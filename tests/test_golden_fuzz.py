"""Golden fuzz corpus: a pinned 64-scenario campaign with verdicts.

A committed snapshot (``tests/data/golden_fuzz.json``) of one seeded
fuzzing campaign: the policy frontier, the campaign-mean miss ratios,
and — per scenario — the sampled counts and the inversion verdict
(``interesting``: a frontier flip or an oracle spike). The scenario
sampler, the workload generators, and the sampled replay are all
deterministic functions of the campaign seed, so drift here means the
*generator space itself* moved — the fuzz fleet would silently start
sweeping different scenarios — and this test forces that to be noticed,
reviewed, and re-pinned.

Miss ratios are tolerance-checked (``TOLERANCE`` absolute) so an
intentional re-pin can tell behavioural change from float noise in the
stored JSON; access counts and verdicts are exact.

Regenerate after an intended change with::

    PYTHONPATH=src:. python -m tests.test_golden_fuzz
"""

import json
from pathlib import Path

import pytest

from repro.sim.fuzz import FuzzConfig, run_fuzz_campaign

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_fuzz.json"

CONFIG = FuzzConfig(seed=42, scenarios=64, accesses=2000, max_full=0)
"""The pinned campaign: 64 scenarios at sampled fidelity only (the
full-fidelity differential law has its own suite in
``tests/sim/test_fuzz.py``)."""

TOLERANCE = 0.002
"""Absolute miss-ratio drift allowed before the test fails."""


def compute_corpus_summary():
    """The slice of the campaign corpus the fixture pins, computed fresh."""
    corpus = run_fuzz_campaign(CONFIG)
    return {
        "config": corpus["config"],
        "frontier": corpus["frontier"],
        "policy_mean_miss_ratio": {
            policy: round(mean, 6)
            for policy, mean in corpus["policy_mean_miss_ratio"].items()
        },
        "interesting": corpus["interesting"],
        "scenarios": {
            record["id"]: {
                "kind": record["kind"],
                "llc_accesses": record["llc_accesses"],
                "sampled_accesses": record["sampled_accesses"],
                "oracle_gain": round(record.get("oracle_gain", 0.0), 6),
                "interesting": record["interesting"],
                "num_flips": len(record["flips"]),
                "miss_ratio": {
                    policy: round(cell["miss_ratio"], 6)
                    for policy, cell in record.get("policies", {}).items()
                },
            }
            for record in corpus["scenarios"]
        },
    }


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing at {GOLDEN_PATH}; regenerate with "
            f"`PYTHONPATH=src:. python -m tests.test_golden_fuzz`"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def current():
    return compute_corpus_summary()


class TestGoldenFuzzCorpus:
    def test_campaign_is_pinned(self, golden):
        assert golden["config"] == CONFIG.as_dict()
        assert len(golden["scenarios"]) == CONFIG.total_scenarios

    def test_generator_space_unchanged(self, golden, current):
        # Same scenario ids, same kinds, same stream/sample sizes: the
        # sampler and the workload generators still draw the same space.
        assert set(golden["scenarios"]) == set(current["scenarios"])
        for sid, pinned in golden["scenarios"].items():
            fresh = current["scenarios"][sid]
            assert fresh["kind"] == pinned["kind"], sid
            assert fresh["llc_accesses"] == pinned["llc_accesses"], sid
            assert fresh["sampled_accesses"] == \
                pinned["sampled_accesses"], sid

    def test_frontier_unchanged(self, golden, current):
        assert current["frontier"] == golden["frontier"]
        for policy, pinned in golden["policy_mean_miss_ratio"].items():
            drift = abs(current["policy_mean_miss_ratio"][policy] - pinned)
            assert drift <= TOLERANCE, (
                f"mean miss ratio for {policy} drifted by {drift:.6f}"
            )

    def test_miss_ratios_within_tolerance(self, golden, current):
        drifts = []
        for sid, pinned in golden["scenarios"].items():
            fresh = current["scenarios"][sid]
            for policy, ratio in pinned["miss_ratio"].items():
                drift = abs(fresh["miss_ratio"][policy] - ratio)
                if drift > TOLERANCE:
                    drifts.append(
                        f"{sid}/{policy}: {ratio} -> "
                        f"{fresh['miss_ratio'][policy]} (drift {drift:.6f})"
                    )
        assert not drifts, (
            "golden fuzz corpus drifted — if intentional, regenerate the "
            "fixture:\n  " + "\n  ".join(drifts)
        )

    def test_inversion_verdicts_exact(self, golden, current):
        assert current["interesting"] == golden["interesting"]
        for sid, pinned in golden["scenarios"].items():
            fresh = current["scenarios"][sid]
            assert fresh["interesting"] == pinned["interesting"], sid
            assert fresh["num_flips"] == pinned["num_flips"], sid

    def test_fixture_flags_at_least_one_inversion(self, golden):
        # The corpus would be a vacuous regression anchor if the pinned
        # campaign never tripped the detector.
        assert golden["interesting"]


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_corpus_summary(), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
