"""Tests for repro.coherence.directory."""

import pytest

from repro.coherence.directory import Directory
from repro.common.errors import SimulationError


class TestDirectory:
    def test_initially_empty(self):
        directory = Directory(4)
        assert directory.sharers(42) == 0
        assert not directory.is_cached(42)
        assert len(directory) == 0

    def test_add_sharers_accumulates_mask(self):
        directory = Directory(4)
        directory.add_sharer(10, 0)
        directory.add_sharer(10, 2)
        assert directory.sharers(10) == 0b101
        assert directory.is_cached(10)

    def test_add_same_sharer_idempotent(self):
        directory = Directory(4)
        directory.add_sharer(10, 1)
        directory.add_sharer(10, 1)
        assert directory.sharers(10) == 0b10

    def test_remove_sharer(self):
        directory = Directory(4)
        directory.add_sharer(10, 0)
        directory.add_sharer(10, 1)
        directory.remove_sharer(10, 0)
        assert directory.sharers(10) == 0b10

    def test_remove_last_sharer_drops_entry(self):
        directory = Directory(4)
        directory.add_sharer(10, 3)
        directory.remove_sharer(10, 3)
        assert not directory.is_cached(10)
        assert len(directory) == 0

    def test_remove_absent_sharer_is_noop(self):
        directory = Directory(4)
        directory.remove_sharer(10, 1)
        assert not directory.is_cached(10)

    def test_set_exclusive_returns_others(self):
        directory = Directory(4)
        for core in (0, 1, 3):
            directory.add_sharer(10, core)
        others = directory.set_exclusive(10, 1)
        assert others == 0b1001
        assert directory.sharers(10) == 0b10
        assert directory.dirty_owner(10) == 1

    def test_set_exclusive_on_uncached_block(self):
        directory = Directory(4)
        assert directory.set_exclusive(10, 2) == 0
        assert directory.sharers(10) == 0b100

    def test_set_exclusive_clean(self):
        directory = Directory(4)
        directory.set_exclusive(10, 2, dirty=False)
        assert directory.dirty_owner(10) == -1

    def test_dirty_owner_cleared_on_remove(self):
        directory = Directory(4)
        directory.set_exclusive(10, 2)
        directory.remove_sharer(10, 2)
        assert directory.dirty_owner(10) == -1

    def test_clear_block_returns_mask(self):
        directory = Directory(4)
        directory.add_sharer(10, 0)
        directory.add_sharer(10, 2)
        assert directory.clear_block(10) == 0b101
        assert not directory.is_cached(10)

    def test_clear_uncached_block(self):
        assert Directory(4).clear_block(99) == 0

    def test_iter_cores(self):
        directory = Directory(8)
        assert list(directory.iter_cores(0b1011)) == [0, 1, 3]
        assert list(directory.iter_cores(0)) == []

    def test_entries_snapshot(self):
        directory = Directory(2)
        directory.add_sharer(5, 0)
        directory.add_sharer(6, 1)
        assert sorted(directory.entries()) == [(5, 0b01), (6, 0b10)]

    def test_rejects_zero_cores(self):
        with pytest.raises(SimulationError):
            Directory(0)
