"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--accesses", "3000", "--workloads", "swaptions", "water"]


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "canneal" in out
        assert "srrip" in out
        assert "scaled-4mb" in out

    def test_characterize(self, capsys):
        assert main(["characterize", *FAST]) == 0
        out = capsys.readouterr().out
        assert "shared_hit_frac" in out
        assert "water" in out
        assert "mean" in out

    def test_compare_with_opt(self, capsys):
        assert main(["compare", *FAST, "--policies", "lru", "srrip", "--opt"]) == 0
        out = capsys.readouterr().out
        assert "opt" in out
        assert "lru" in out

    def test_oracle(self, capsys):
        assert main(["oracle", *FAST, "--base", "lru"]) == 0
        out = capsys.readouterr().out
        assert "miss_reduction" in out

    def test_predict(self, capsys):
        assert main(["predict", *FAST, "--predictors", "address", "pc"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "water/pc" in out

    def test_sweep(self, capsys):
        assert main(["sweep", *FAST]) == 0
        out = capsys.readouterr().out
        assert "avg_oracle_red" in out

    def test_phases(self, capsys):
        assert main(["phases", *FAST]) == 0
        out = capsys.readouterr().out
        assert "last_value_acc" in out
        assert "mixed_pcs" in out

    def test_mix(self, capsys):
        assert main(["mix", "--accesses", "3000",
                     "--components", "swaptions", "water"]) == 0
        out = capsys.readouterr().out
        assert "mix(swaptions+water)" in out
        assert "oracle miss reduction" in out

    def test_record_and_replay(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["record", "--accesses", "3000",
                     "--workloads", "water", "--out-prefix",
                     str(tmp_path / "s_")]) == 0
        path = str(tmp_path / "s_water.rllc.gz")
        assert main(["replay", path, "--policies", "lru", "--opt"]) == 0
        out = capsys.readouterr().out
        assert "recorded water" in out
        assert "opt" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--workloads", "doom3"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--policies", "belady"])


class TestParallelAndCacheCli:
    def test_compare_jobs_output_identical(self, capsys):
        args = ["compare", *FAST, "--policies", "lru", "srrip"]
        assert main([*args, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_jobs_runs(self, capsys):
        assert main(["sweep", *FAST, "--jobs", "2"]) == 0
        assert "avg_oracle_red" in capsys.readouterr().out

    def test_cache_info_and_clear(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "cached streams" in out
        assert "2" in out  # two workloads recorded

        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed 4" in capsys.readouterr().out

        assert main(["cache", "info", "--cache-dir", cache]) == 0
        assert " 0 |" in capsys.readouterr().out

    def test_negative_jobs_clean_error(self, capsys):
        # Rejected by argparse at parse time, before any worker spawns.
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", *FAST, "--policies", "lru", "--jobs", "-1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be >= 0" in err
        assert "Traceback" not in err

    def test_no_cache_flag_skips_disk(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["characterize", *FAST, "--no-cache",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache]) == 0
        assert " 0 |" in capsys.readouterr().out

    def test_cache_info_reports_orphan_tmp_files(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / "tmp999-stale.rllc.gz").write_bytes(b"partial")
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "orphan tmp files" in out

        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not (cache / "tmp999-stale.rllc.gz").exists()


class TestFastpathCli:
    def test_no_fastpath_output_identical(self, capsys):
        args = ["characterize", *FAST]
        assert main(args) == 0
        fast = capsys.readouterr().out
        assert main([*args, "--no-fastpath"]) == 0
        scalar = capsys.readouterr().out
        assert scalar == fast

    def test_replay_accepts_no_fastpath(self, capsys, tmp_path):
        assert main(["record", "--accesses", "3000", "--workloads", "water",
                     "--out-prefix", str(tmp_path / "s_")]) == 0
        capsys.readouterr()
        path = str(tmp_path / "s_water.rllc.gz")
        assert main(["replay", path, "--policies", "lru"]) == 0
        fast = capsys.readouterr().out
        assert main(["replay", path, "--policies", "lru",
                     "--no-fastpath"]) == 0
        scalar = capsys.readouterr().out
        assert scalar == fast

    def test_oracle_no_fastpath_identical(self, capsys):
        args = ["oracle", *FAST, "--base", "lru"]
        assert main(args) == 0
        fast = capsys.readouterr().out
        assert main([*args, "--no-fastpath"]) == 0
        scalar = capsys.readouterr().out
        assert scalar == fast


class TestNewPredictorsInCli:
    def test_predict_with_region_and_lastvalue(self, capsys):
        assert main(["predict", "--accesses", "3000", "--workloads", "water",
                     "--predictors", "region", "lastvalue"]) == 0
        out = capsys.readouterr().out
        assert "water/region" in out
        assert "water/lastvalue" in out


class TestSweepSizesValidation:
    """``--sizes`` is validated at parse time: every rejection is a one-line
    argparse error (exit code 2, no traceback, no workload ever generated)."""

    def _reject(self, capsys, sizes, fragment):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *FAST, "--sizes", *sizes])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert "Traceback" not in err

    def test_zero_rejected(self, capsys):
        self._reject(capsys, ["0"], "must be positive")

    def test_negative_rejected(self, capsys):
        self._reject(capsys, ["-2"], "must be positive")

    def test_non_number_rejected(self, capsys):
        self._reject(capsys, ["big"], "not a number")

    def test_non_power_of_two_rejected(self, capsys):
        self._reject(capsys, ["0.75"], "not a power of two")

    def test_duplicate_rejected(self, capsys):
        self._reject(capsys, ["0.5", "2", "0.5"], "duplicate capacity")

    def test_valid_sizes_sweep_runs(self, capsys):
        # 0.5x and 2x of the scaled-4mb 256KB LLC.
        assert main(["sweep", *FAST, "--sizes", "0.5", "2"]) == 0
        out = capsys.readouterr().out
        assert "128KB" in out
        assert "512KB" in out


class TestFuzzCli:
    FUZZ = ["fuzz", "run", "--scenarios", "4", "--seed", "7",
            "--accesses", "1200", "--no-telemetry"]

    @pytest.fixture(scope="class")
    def corpus_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "inversions.json"
        assert main([*self.FUZZ, "--output", str(path)]) == 0
        return path

    def test_run_emits_a_corpus(self, corpus_path, capsys):
        import json

        corpus = json.loads(corpus_path.read_text(encoding="utf-8"))
        assert corpus["format_version"] == 1
        assert len(corpus["scenarios"]) == 4
        assert not corpus["mismatches"]

    def test_run_renders_a_summary(self, corpus_path, capsys):
        assert main([*self.FUZZ, "--output", str(corpus_path)]) == 0
        out = capsys.readouterr().out
        assert "scenarios run" in out
        assert "frontier" in out

    def test_triage(self, corpus_path, capsys):
        assert main(["fuzz", "triage", str(corpus_path)]) == 0
        out = capsys.readouterr().out
        assert "Reference frontier" in out

    def test_replay_cell(self, corpus_path, capsys):
        import json

        corpus = json.loads(corpus_path.read_text(encoding="utf-8"))
        target = corpus["scenarios"][0]["id"]
        assert main(["fuzz", "replay-cell", str(corpus_path), target]) == 0
        out = capsys.readouterr().out
        assert "matches reference sampler" in out

    def test_replay_unknown_cell_exits_2(self, corpus_path, capsys):
        assert main(["fuzz", "replay-cell", str(corpus_path),
                     "s99999"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_corpus_exits_2(self, tmp_path, capsys):
        assert main(["fuzz", "triage", str(tmp_path / "ghost.json")]) == 2
        assert "cannot read corpus" in capsys.readouterr().err

    def test_negative_scenarios_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "run", "--scenarios", "-1"])

    def test_bad_trace_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fuzz", "run", "--trace", "x.bin:nacho"]
            )

    def test_trace_spec_with_format_parses(self):
        args = build_parser().parse_args(
            ["fuzz", "run", "--trace", "a.out:pin",
             "--trace", "b.champsim.bin"]
        )
        assert args.trace == [("a.out", "pin"), ("b.champsim.bin", "auto")]
