"""Smoke tests: every example script must run end to end.

Examples are executed in-process via runpy with small access budgets so
the whole file stays fast; stdout is captured and spot-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_ARGS = {
    "quickstart.py": [],
    "characterize_suite.py": ["--accesses", "3000"],
    "oracle_study.py": ["--accesses", "3000"],
    "predictor_study.py": ["--accesses", "3000"],
    "policy_shootout.py": ["--accesses", "3000"],
    "capacity_planning.py": ["--accesses", "3000"],
}

EXPECTED_OUTPUT = {
    "quickstart.py": "hit-density ratio",
    "characterize_suite.py": "shared_hits",
    "oracle_study.py": "oracle_gain@8MB",
    "predictor_study.py": "driven(",
    "policy_shootout.py": "opt",
    "capacity_planning.py": "Working-set knee",
}


def test_every_example_is_listed():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_ARGS)


@pytest.mark.parametrize("script", sorted(FAST_ARGS))
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(
        sys, "argv", [script, *FAST_ARGS[script]], raising=False
    )
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTED_OUTPUT[script] in out
