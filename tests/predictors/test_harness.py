"""Tests for the predictor evaluation harness and predictor-driven policy."""

import pytest

from repro.common.config import CacheGeometry
from repro.oracle.wrapper import SharingAwareWrapper
from repro.policies.lru import LruPolicy
from repro.predictors.base import SharingPredictor
from repro.predictors.baselines import AlwaysSharedPredictor, NeverSharedPredictor
from repro.predictors.harness import PredictorHarness, predictor_hint_source
from repro.predictors.registry import PREDICTOR_NAMES, make_predictor
from repro.predictors.tables import AddressSharingPredictor
from repro.sim.engine import LlcOnlySimulator
from tests.conftest import make_stream

GEOMETRY = CacheGeometry(2 * 2 * 64, 2)


def run_with_harness(accesses, predictor, warmup_fills=0):
    harness = PredictorHarness(predictor, warmup_fills=warmup_fills)
    simulator = LlcOnlySimulator(GEOMETRY, LruPolicy(), observers=(harness,))
    simulator.run(make_stream(accesses))
    return harness


class TestPredictorHarness:
    def test_scores_every_fill(self):
        accesses = [(0, 0, b, False) for b in range(10)]
        harness = run_with_harness(accesses, NeverSharedPredictor())
        assert harness.matrix.total == 10

    def test_never_predictor_accuracy_is_private_rate(self):
        accesses = [
            (0, 0, 0, False), (1, 0, 0, False),   # shared residency
            (0, 0, 1, False),                      # private residency
        ]
        harness = run_with_harness(accesses, NeverSharedPredictor())
        assert harness.matrix.true_negative == 1
        assert harness.matrix.false_negative == 1

    def test_always_predictor_recall_is_one(self):
        accesses = [(0, 0, 0, False), (1, 0, 0, False), (0, 0, 1, False)]
        harness = run_with_harness(accesses, AlwaysSharedPredictor())
        assert harness.matrix.recall == 1.0
        assert harness.matrix.false_positive == 1

    def test_training_happens_at_residency_end(self):
        """The second residency of a block must see tables trained by the
        first residency's outcome."""
        predictor = AddressSharingPredictor(counter_bits=1)
        accesses = [
            (0, 0, 0, False), (1, 0, 0, False),   # residency 1 of block 0: shared
            (0, 0, 2, False), (0, 0, 4, False),   # evict block 0 (set 0 fills)
            (0, 0, 0, False),                      # residency 2 of block 0
        ]
        harness = run_with_harness(accesses, predictor)
        # At residency 2's fill the predictor had learned "block 0 shared"
        # from residency 1, so that fill was predicted shared — a false
        # positive, since residency 2 ends private at the flush (which then
        # re-trains the entry back toward private).
        assert harness.matrix.false_positive >= 1
        assert harness.matrix.true_positive >= 0

    def test_prediction_made_with_fill_time_state(self):
        """Predictions must reflect the table BEFORE this residency's own
        outcome is trained."""

        class Flipping(SharingPredictor):
            name = "flipping"

            def __init__(self):
                self.state = False

            def predict(self, block, pc, core):
                return self.state

            def train(self, block, pc, core, was_shared):
                self.state = not self.state

        harness = run_with_harness([(0, 0, 0, False), (0, 0, 1, False)],
                                   Flipping())
        # Fill 1 predicted False (initial state); fill 2 also False because
        # training only happens at flush, after both predictions.
        assert harness.matrix.true_negative == 2

    def test_warmup_excludes_early_fills(self):
        accesses = [(0, 0, b, False) for b in range(10)]
        harness = run_with_harness(accesses, NeverSharedPredictor(),
                                   warmup_fills=4)
        assert harness.matrix.total == 6

    def test_pending_prediction_inspection(self):
        harness = PredictorHarness(AlwaysSharedPredictor())
        simulator = LlcOnlySimulator(GEOMETRY, LruPolicy(), observers=(harness,))
        simulator.llc.access(0, 0, 0, False)
        assert harness.last_prediction_for(1) is True
        assert harness.last_prediction_for(99) is None


class TestPredictorDrivenPolicy:
    def test_never_predictor_equals_base(self):
        accesses = [(i % 2, 0, i % 10, False) for i in range(400)]
        stream = make_stream(accesses)
        plain = LlcOnlySimulator(GEOMETRY, LruPolicy()).run(stream)
        predictor = NeverSharedPredictor()
        wrapper = SharingAwareWrapper(LruPolicy(),
                                      predictor_hint_source(predictor))
        driven = LlcOnlySimulator(GEOMETRY, wrapper).run(stream)
        assert driven.misses == plain.misses

    @pytest.mark.parametrize("name", PREDICTOR_NAMES)
    def test_every_predictor_drives_policy(self, name):
        """Full online loop: predictor drives insertion/eviction while the
        harness trains it from realised residencies."""
        import random

        rng = random.Random(0)
        accesses = [
            (rng.randrange(2), rng.randrange(16) * 4, rng.randrange(12),
             rng.random() < 0.2)
            for __ in range(1000)
        ]
        stream = make_stream(accesses)
        predictor = make_predictor(name)
        harness = PredictorHarness(predictor)
        wrapper = SharingAwareWrapper(LruPolicy(),
                                      predictor_hint_source(predictor))
        result = LlcOnlySimulator(GEOMETRY, wrapper,
                                  observers=(harness,)).run(stream)
        assert result.accesses == 1000
        assert harness.matrix.total == result.misses
