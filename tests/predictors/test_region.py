"""Tests for the region-granularity sharing predictor."""

import pytest

from repro.common.errors import ConfigError
from repro.predictors.region import RegionSharingPredictor


class TestRegionSharingPredictor:
    def test_blocks_of_one_region_share_history(self):
        predictor = RegionSharingPredictor(region_blocks=64, counter_bits=1)
        predictor.train(block=0, pc=0, core=0, was_shared=True)
        # A different block of the same 64-block region inherits the history.
        assert predictor.predict(block=63, pc=0, core=0)

    def test_different_regions_independent(self):
        predictor = RegionSharingPredictor(region_blocks=64, counter_bits=1)
        predictor.train(block=0, pc=0, core=0, was_shared=True)
        assert not predictor.predict(block=64, pc=0, core=0)

    def test_aggregates_mixed_outcomes_by_majority(self):
        predictor = RegionSharingPredictor(region_blocks=64, counter_bits=3)
        for i in range(30):
            predictor.train(block=i % 64, pc=0, core=0, was_shared=i % 3 != 0)
        assert predictor.predict(block=5, pc=0, core=0)  # 2/3 shared wins

    def test_custom_region_size(self):
        predictor = RegionSharingPredictor(region_blocks=4, counter_bits=1)
        predictor.train(block=0, pc=0, core=0, was_shared=True)
        assert predictor.predict(block=3, pc=0, core=0)
        assert not predictor.predict(block=4, pc=0, core=0)

    def test_rejects_non_power_of_two_region(self):
        with pytest.raises(ConfigError):
            RegionSharingPredictor(region_blocks=48)

    def test_registered(self):
        from repro.predictors.registry import PREDICTOR_NAMES, make_predictor

        assert "region" in PREDICTOR_NAMES
        assert make_predictor("region").name == "region"

    def test_more_stable_than_block_history_on_bimodal_blocks(self):
        """A structure whose individual blocks flip outcomes but whose
        aggregate is mostly shared: region history stays correct where
        per-block last-value style history keeps flipping."""
        from repro.predictors.tables import AddressSharingPredictor

        region = RegionSharingPredictor(region_blocks=64, counter_bits=3)
        address = AddressSharingPredictor(counter_bits=1)
        outcomes = []
        for round_ in range(40):
            for block in range(8):
                # Each block shared 3 rounds out of 4, phase-shifted.
                outcomes.append((block, (round_ + block) % 4 != 0))
        region_correct = address_correct = 0
        for block, shared in outcomes:
            region_correct += region.predict(block, 0, 0) == shared
            address_correct += address.predict(block, 0, 0) == shared
            region.train(block, 0, 0, shared)
            address.train(block, 0, 0, shared)
        assert region_correct > address_correct
