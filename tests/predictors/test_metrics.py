"""Tests for the prediction confusion matrix."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors.metrics import ConfusionMatrix


class TestConfusionMatrix:
    def make(self):
        matrix = ConfusionMatrix()
        outcomes = [
            (True, True), (True, True), (True, False),      # 2 TP, 1 FP
            (False, True), (False, False), (False, False),  # 1 FN, 2 TN
        ]
        for predicted, actual in outcomes:
            matrix.update(predicted, actual)
        return matrix

    def test_counts(self):
        matrix = self.make()
        assert matrix.true_positive == 2
        assert matrix.false_positive == 1
        assert matrix.false_negative == 1
        assert matrix.true_negative == 2
        assert matrix.total == 6

    def test_accuracy(self):
        assert self.make().accuracy == pytest.approx(4 / 6)

    def test_precision_recall(self):
        matrix = self.make()
        assert matrix.precision == pytest.approx(2 / 3)
        assert matrix.recall == pytest.approx(2 / 3)

    def test_coverage_and_base_rate(self):
        matrix = self.make()
        assert matrix.coverage == pytest.approx(3 / 6)
        assert matrix.base_rate == pytest.approx(3 / 6)

    def test_f1(self):
        matrix = self.make()
        assert matrix.f1 == pytest.approx(2 / 3)

    def test_empty_matrix_safe(self):
        matrix = ConfusionMatrix()
        assert matrix.accuracy == 0.0
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.f1 == 0.0

    def test_merge(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert a.total == 12
        assert a.true_positive == 4

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=100))
    def test_invariants(self, outcomes):
        matrix = ConfusionMatrix()
        for predicted, actual in outcomes:
            matrix.update(predicted, actual)
        assert matrix.total == len(outcomes)
        assert 0.0 <= matrix.accuracy <= 1.0
        assert 0.0 <= matrix.precision <= 1.0
        assert 0.0 <= matrix.recall <= 1.0
        assert matrix.coverage * matrix.total == pytest.approx(
            matrix.true_positive + matrix.false_positive
        )
