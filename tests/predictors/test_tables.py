"""Tests for the history-table sharing predictors."""

import pytest

from repro.common.errors import ConfigError
from repro.predictors.baselines import AlwaysSharedPredictor, NeverSharedPredictor
from repro.predictors.tables import (
    AddressSharingPredictor,
    HybridSharingPredictor,
    PcSharingPredictor,
)


class TestAddressPredictor:
    def test_initially_predicts_private(self):
        predictor = AddressSharingPredictor()
        assert not predictor.predict(0x100, 0x1, 0)

    def test_learns_shared_block(self):
        predictor = AddressSharingPredictor()
        for __ in range(2):
            predictor.train(0x100, 0x1, 0, True)
        assert predictor.predict(0x100, 0x1, 0)

    def test_learning_is_per_block(self):
        predictor = AddressSharingPredictor()
        for __ in range(3):
            predictor.train(0x100, 0x1, 0, True)
        assert not predictor.predict(0x200, 0x1, 0)

    def test_pc_irrelevant_for_address_predictor(self):
        predictor = AddressSharingPredictor()
        for __ in range(3):
            predictor.train(0x100, 0x1, 0, True)
        assert predictor.predict(0x100, 0x999, 3)

    def test_unlearns_on_private_outcomes(self):
        predictor = AddressSharingPredictor()
        for __ in range(3):
            predictor.train(0x100, 0, 0, True)
        for __ in range(4):
            predictor.train(0x100, 0, 0, False)
        assert not predictor.predict(0x100, 0, 0)

    def test_counter_saturation(self):
        predictor = AddressSharingPredictor(counter_bits=2)
        for __ in range(100):
            predictor.train(0x100, 0, 0, True)
        # One private outcome must not flip a saturated counter.
        predictor.train(0x100, 0, 0, False)
        assert predictor.predict(0x100, 0, 0)

    def test_reset(self):
        predictor = AddressSharingPredictor()
        for __ in range(3):
            predictor.train(0x100, 0, 0, True)
        predictor.reset()
        assert not predictor.predict(0x100, 0, 0)

    def test_storage_bits(self):
        assert AddressSharingPredictor(index_bits=10, counter_bits=2).storage_bits() == 2048
        assert AddressSharingPredictor(
            index_bits=10, counter_bits=2, tag_bits=6
        ).storage_bits() == 1024 * 8

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError):
            AddressSharingPredictor(index_bits=0)
        with pytest.raises(ConfigError):
            AddressSharingPredictor(tag_bits=-1)


class TestTaggedEntries:
    def test_tag_mismatch_returns_default(self):
        predictor = AddressSharingPredictor(index_bits=2, tag_bits=8,
                                            default_shared=False)
        predictor.train(0x100, 0, 0, True)
        predictor.train(0x100, 0, 0, True)
        # Find a block aliasing to the same index with a different tag.
        index, tag = predictor._slot(0x100)
        other = next(
            b for b in range(1, 1 << 16)
            if predictor._slot(b)[0] == index and predictor._slot(b)[1] != tag
        )
        assert not predictor.predict(other, 0, 0)

    def test_training_reallocates_on_mismatch(self):
        predictor = AddressSharingPredictor(index_bits=2, tag_bits=8)
        index, tag = predictor._slot(0x100)
        other = next(
            b for b in range(1, 1 << 16)
            if predictor._slot(b)[0] == index and predictor._slot(b)[1] != tag
        )
        predictor.train(0x100, 0, 0, True)
        predictor.train(other, 0, 0, True)   # steals the entry
        assert predictor._tags[index] == predictor._slot(other)[1]


class TestPcPredictor:
    def test_keyed_by_pc_not_block(self):
        predictor = PcSharingPredictor()
        for __ in range(3):
            predictor.train(0x100, 0xAA, 0, True)
        assert predictor.predict(0x999, 0xAA, 0)
        assert not predictor.predict(0x100, 0xBB, 0)

    def test_pc_ambiguity_is_inherent(self):
        """One PC filling both shared and private blocks converges to the
        majority — the paper's core argument for why PC prediction fails."""
        predictor = PcSharingPredictor()
        for i in range(100):
            predictor.train(i, 0xAA, 0, i % 4 == 0)  # 25% shared
        assert not predictor.predict(0, 0xAA, 0)     # majority private wins


class TestHybridPredictor:
    def test_chooser_learns_better_component(self):
        hybrid = HybridSharingPredictor()
        block, pc = 0x100, 0xAA
        # Address history says shared; PC history says private; truth is
        # shared -> the chooser should come to prefer the address table.
        for __ in range(4):
            hybrid.address.train(block, pc, 0, True)
            hybrid.pc.train(0x999, pc, 0, False)
        for __ in range(4):
            hybrid.train(block, pc, 0, True)
        assert hybrid.predict(block, pc, 0)

    def test_reset_clears_everything(self):
        hybrid = HybridSharingPredictor()
        for __ in range(4):
            hybrid.train(0x100, 0xAA, 0, True)
        hybrid.reset()
        assert not hybrid.predict(0x100, 0xAA, 0)

    def test_storage_includes_all_tables(self):
        hybrid = HybridSharingPredictor(index_bits=10, counter_bits=2,
                                        chooser_bits=8)
        expected = 2 * (1024 * 2) + 256 * 2
        assert hybrid.storage_bits() == expected

    def test_invalid_chooser(self):
        with pytest.raises(ConfigError):
            HybridSharingPredictor(chooser_bits=0)


class TestBaselines:
    def test_always(self):
        predictor = AlwaysSharedPredictor()
        assert predictor.predict(0, 0, 0)
        predictor.train(0, 0, 0, False)   # training is a no-op
        assert predictor.predict(0, 0, 0)

    def test_never(self):
        predictor = NeverSharedPredictor()
        assert not predictor.predict(0, 0, 0)
        predictor.train(0, 0, 0, True)
        assert not predictor.predict(0, 0, 0)

    def test_baselines_have_no_storage(self):
        assert AlwaysSharedPredictor().storage_bits() == 0
        assert NeverSharedPredictor().storage_bits() == 0


class TestHashMixing:
    def test_mix_spreads_sequential_keys(self):
        from repro.predictors.tables import _mix

        indices = { _mix(key) & 0x3FF for key in range(200) }
        # Sequential keys must not collapse onto a few table entries.
        assert len(indices) > 150

    def test_mix_deterministic(self):
        from repro.predictors.tables import _mix

        assert _mix(123456) == _mix(123456)


class TestDefaultSharedBias:
    def test_default_shared_predicts_shared_when_cold(self):
        predictor = AddressSharingPredictor(tag_bits=8, default_shared=True)
        assert predictor.predict(0x9999, 0, 0)

    def test_threshold_semantics(self):
        predictor = AddressSharingPredictor(counter_bits=2)
        # Initial counter = threshold - 1 => private; one shared outcome
        # reaches the threshold => shared.
        assert not predictor.predict(0x1, 0, 0)
        predictor.train(0x1, 0, 0, True)
        assert predictor.predict(0x1, 0, 0)
