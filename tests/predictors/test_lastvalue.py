"""Tests for the idealized last-value predictor."""

from repro.common.config import CacheGeometry
from repro.characterization.phases import SharingPhaseTracker
from repro.policies.lru import LruPolicy
from repro.predictors.harness import PredictorHarness
from repro.predictors.lastvalue import LastValuePredictor
from repro.sim.engine import LlcOnlySimulator
from tests.conftest import make_stream


class TestLastValuePredictor:
    def test_default_before_history(self):
        assert not LastValuePredictor().predict(0, 0, 0)
        assert LastValuePredictor(default_shared=True).predict(0, 0, 0)

    def test_remembers_last_outcome(self):
        predictor = LastValuePredictor()
        predictor.train(5, 0, 0, True)
        assert predictor.predict(5, 0, 0)
        predictor.train(5, 0, 0, False)
        assert not predictor.predict(5, 0, 0)

    def test_per_block(self):
        predictor = LastValuePredictor()
        predictor.train(5, 0, 0, True)
        assert not predictor.predict(6, 0, 0)

    def test_reset(self):
        predictor = LastValuePredictor()
        predictor.train(5, 0, 0, True)
        predictor.reset()
        assert not predictor.predict(5, 0, 0)

    def test_storage_tracks_blocks(self):
        predictor = LastValuePredictor()
        for block in range(10):
            predictor.train(block, 0, 0, True)
        assert predictor.storage_bits() == 10

    def test_accuracy_matches_phase_stats_bound(self):
        """On repeat residencies the harness accuracy must equal the phase
        tracker's last-value accuracy (same quantity by construction)."""
        import random

        rng = random.Random(2)
        accesses = [
            (rng.randrange(2), 0, rng.randrange(10), False)
            for __ in range(3000)
        ]
        stream = make_stream(accesses)
        geometry = CacheGeometry(2 * 2 * 64, 2)

        predictor = LastValuePredictor()
        harness = PredictorHarness(predictor)
        tracker = SharingPhaseTracker()
        LlcOnlySimulator(
            geometry, LruPolicy(), observers=(harness, tracker)
        ).run(stream)
        stats = tracker.finalize()

        # Restrict the comparison to repeat residencies: the harness also
        # scores each block's first residency (predicted with the default),
        # which the transition statistics exclude.
        matrix = harness.matrix
        first_sightings = (
            stats.single_residency_blocks + stats.blocks_always_shared
            + stats.blocks_always_private + stats.blocks_bimodal
        )
        repeat_total = matrix.total - first_sightings
        assert repeat_total == stats.transitions
        correct_on_repeats = (
            stats.shared_to_shared + stats.private_to_private
        )
        # Matrix correctness = repeats correct + first sightings that were
        # actually private (the default prediction).
        first_correct = (
            matrix.true_positive + matrix.true_negative - correct_on_repeats
        )
        assert 0 <= first_correct <= first_sightings
