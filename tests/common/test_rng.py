"""Tests for repro.common.rng."""

from repro.common.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_component_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_component_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_fits_32_bits(self):
        for base in (0, 1, 2**31, 2**40):
            assert 0 <= derive_seed(base, "x") < 2**32

    def test_known_value_stable_across_runs(self):
        # Pins the derivation so persisted traces stay reproducible.
        assert derive_seed(42, "workload", "canneal") == derive_seed(
            42, "workload", "canneal"
        )
        assert derive_seed(0, "") == derive_seed(0, "")


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a, b = DeterministicRng(7), DeterministicRng(7)
        assert [a.randrange(1000) for __ in range(50)] == [
            b.randrange(1000) for __ in range(50)
        ]

    def test_different_seed_diverges(self):
        a, b = DeterministicRng(7), DeterministicRng(8)
        assert [a.randrange(10**9) for __ in range(10)] != [
            b.randrange(10**9) for __ in range(10)
        ]

    def test_spawn_is_deterministic(self):
        a = DeterministicRng(7).spawn("child", 3)
        b = DeterministicRng(7).spawn("child", 3)
        assert a.randrange(10**9) == b.randrange(10**9)

    def test_spawn_children_independent(self):
        parent = DeterministicRng(7)
        a, b = parent.spawn("x"), parent.spawn("y")
        assert [a.randrange(10**9) for __ in range(5)] != [
            b.randrange(10**9) for __ in range(5)
        ]

    def test_spawn_does_not_consume_parent_state(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        a.spawn("child")
        assert a.randrange(10**9) == b.randrange(10**9)

    def test_initial_seed_recorded(self):
        assert DeterministicRng(123).initial_seed == 123
