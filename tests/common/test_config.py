"""Tests for repro.common.config."""

import pytest

from repro.common.config import (
    KB,
    MB,
    SCALE_FACTOR,
    CacheGeometry,
    MachineConfig,
    PROFILE_NAMES,
    full_4mb,
    full_8mb,
    profile,
    scaled_4mb,
    scaled_8mb,
)
from repro.common.errors import ConfigError


class TestCacheGeometry:
    def test_derived_quantities(self):
        geometry = CacheGeometry(4 * MB, 16, 64)
        assert geometry.num_sets == 4096
        assert geometry.num_blocks == 65536
        assert geometry.set_index_bits == 12

    def test_set_index_wraps_block_address(self):
        geometry = CacheGeometry(2048, 4, 64)  # 8 sets
        assert geometry.set_index(0) == 0
        assert geometry.set_index(8) == 0
        assert geometry.set_index(13) == 5

    def test_tag_strips_index_bits(self):
        geometry = CacheGeometry(2048, 4, 64)  # 8 sets -> 3 index bits
        assert geometry.tag(0b101_011) == 0b101

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 0, 64)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 4, 48)

    def test_rejects_misaligned_capacity(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 4, 64)

    def test_rejects_non_power_of_two_sets(self):
        # 3 sets: 3 * 4 * 64 = 768 bytes.
        with pytest.raises(ConfigError):
            CacheGeometry(768, 4, 64)

    def test_describe_mb_and_kb(self):
        assert "4MB 16-way 64B" == CacheGeometry(4 * MB, 16).describe()
        assert "256KB 8-way 64B" == CacheGeometry(256 * KB, 8).describe()


class TestMachineConfig:
    def test_paper_full_profiles(self):
        machine = full_4mb()
        assert machine.num_cores == 8
        assert machine.llc.size_bytes == 4 * MB
        assert machine.llc.ways == 16
        assert machine.scale == 1
        assert full_8mb().llc.size_bytes == 8 * MB

    def test_scaled_profiles_divide_every_level(self):
        full, scaled = full_4mb(), scaled_4mb()
        assert scaled.l1.size_bytes * SCALE_FACTOR == full.l1.size_bytes
        assert scaled.l2.size_bytes * SCALE_FACTOR == full.l2.size_bytes
        assert scaled.llc.size_bytes * SCALE_FACTOR == full.llc.size_bytes
        assert scaled.scale == SCALE_FACTOR

    def test_scaled_8mb_llc_is_double_scaled_4mb(self):
        assert scaled_8mb().llc.size_bytes == 2 * scaled_4mb().llc.size_bytes

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            MachineConfig("bad", 0, CacheGeometry(512, 4),
                          CacheGeometry(1024, 4), CacheGeometry(4096, 8))

    def test_rejects_mixed_block_sizes(self):
        with pytest.raises(ConfigError):
            MachineConfig("bad", 2, CacheGeometry(512, 4, 64),
                          CacheGeometry(2048, 4, 128), CacheGeometry(8192, 8, 64))

    def test_rejects_inverted_hierarchy(self):
        with pytest.raises(ConfigError):
            MachineConfig("bad", 2, CacheGeometry(2048, 4),
                          CacheGeometry(1024, 4), CacheGeometry(8192, 8))

    def test_rejects_llc_smaller_than_private_sum(self):
        # 8 cores x 1KB L2 = 8KB > 4KB LLC violates inclusion.
        with pytest.raises(ConfigError):
            MachineConfig("bad", 8, CacheGeometry(512, 4),
                          CacheGeometry(1024, 4), CacheGeometry(4096, 8))

    def test_with_llc_size(self):
        machine = scaled_4mb()
        bigger = machine.with_llc_size(machine.llc.size_bytes * 2)
        assert bigger.llc.size_bytes == 2 * machine.llc.size_bytes
        assert bigger.llc.ways == machine.llc.ways
        assert bigger.l2 == machine.l2

    def test_with_llc_size_appends_suffix_once(self):
        machine = scaled_4mb()
        size = machine.llc.size_bytes
        resized = machine.with_llc_size(size * 2)
        assert resized.name == f"{machine.name}@llc={size * 2}"
        # Re-resizing replaces the suffix instead of stacking a second one.
        again = resized.with_llc_size(size * 4)
        assert again.name == f"{machine.name}@llc={size * 4}"
        assert again.name.count("@llc=") == 1

    def test_with_llc_size_roundtrip_restores_name(self):
        machine = scaled_4mb()
        size = machine.llc.size_bytes
        roundtrip = machine.with_llc_size(size * 2).with_llc_size(size)
        assert roundtrip.name == f"{machine.name}@llc={size}"
        assert roundtrip.llc == machine.llc

    def test_describe_mentions_cores_and_llc(self):
        text = full_4mb().describe()
        assert "8" in text
        assert "4MB" in text

    def test_block_bytes_property(self):
        assert full_4mb().block_bytes == 64


class TestProfileLookup:
    def test_all_names_resolve(self):
        for name in PROFILE_NAMES:
            assert profile(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            profile("mega-llc")

    def test_core_count_override(self):
        assert profile("scaled-4mb", num_cores=4).num_cores == 4


class TestFullProfileGeometry:
    def test_paper_llc_set_counts(self):
        assert full_4mb().llc.num_sets == 4096
        assert full_8mb().llc.num_sets == 8192
        assert full_4mb().llc.num_blocks == 65536

    def test_paper_private_levels(self):
        machine = full_4mb()
        assert machine.l1.num_sets == 64      # 32KB 8-way
        assert machine.l2.num_sets == 512     # 256KB 8-way

    def test_scaled_preserves_associativity(self):
        assert scaled_4mb().llc.ways == full_4mb().llc.ways
        assert scaled_4mb().l1.ways == full_4mb().l1.ways
