"""Tests for repro.common.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import CounterBag, geometric_mean, ratio, safe_div


class TestSafeDiv:
    def test_normal_division(self):
        assert safe_div(6, 3) == 2.0

    def test_zero_denominator_returns_default(self):
        assert safe_div(6, 0) == 0.0
        assert safe_div(6, 0, default=-1.0) == -1.0


class TestRatio:
    def test_fraction(self):
        assert ratio(1, 4) == 0.25

    def test_zero_whole(self):
        assert ratio(1, 0) == 0.0


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_known_pair(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) <= mean * (1 + 1e-9)
        assert mean <= max(values) * (1 + 1e-9)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10))
    def test_log_identity(self, values):
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geometric_mean(values) == pytest.approx(expected)


class TestCounterBag:
    def test_add_and_get(self):
        bag = CounterBag()
        bag.add("hits")
        bag.add("hits", 4)
        assert bag.get("hits") == 5

    def test_missing_counter_is_zero(self):
        assert CounterBag().get("nothing") == 0

    def test_initial_values(self):
        bag = CounterBag({"misses": 3})
        assert bag.get("misses") == 3

    def test_fraction(self):
        bag = CounterBag({"hits": 3, "accesses": 12})
        assert bag.fraction("hits", "accesses") == 0.25

    def test_fraction_zero_denominator(self):
        assert CounterBag().fraction("a", "b") == 0.0

    def test_merge(self):
        a = CounterBag({"x": 1})
        b = CounterBag({"x": 2, "y": 5})
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 5

    def test_len_and_contains(self):
        bag = CounterBag({"x": 1})
        assert len(bag) == 1
        assert "x" in bag
        assert "y" not in bag

    def test_as_dict_is_a_copy(self):
        bag = CounterBag({"x": 1})
        snapshot = bag.as_dict()
        snapshot["x"] = 99
        assert bag.get("x") == 1

    def test_repr_sorted(self):
        assert repr(CounterBag({"b": 2, "a": 1})) == "CounterBag(a=1, b=2)"
