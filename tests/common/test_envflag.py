"""The shared REPRO_SIM_* boolean-toggle semantics.

Historically every toggle tested ``VAR in os.environ`` (or bare
``os.environ.get``), so ``VAR=0`` and ``VAR=false`` *enabled* the toggle —
the opposite of what anyone writing ``REPRO_SIM_NO_FASTPATH=0`` meant.
:func:`repro.common.envflag.env_flag` centralizes the fix; this file pins
the value matrix and that the three ``REPRO_SIM_NO_*`` gates actually
route through it.
"""

import pytest

from repro.common import FALSE_WORDS, env_flag
from repro.common.npsupport import NO_NUMPY_ENV
from repro.sim.fastpath import FASTPATH_ENV, fastpath_enabled
from repro.sim.nativepath import NO_NATIVE_ENV, native_enabled

TRUTHY = ["1", "true", "yes", "on", "TRUE", " 1 ", "anything", "2", "force"]
FALSY = ["", "0", "false", "no", "off", "False", "NO", " OFF ", "  "]


class TestEnvFlag:
    @pytest.mark.parametrize("value", TRUTHY)
    def test_truthy_values(self, value):
        assert env_flag("X", environ={"X": value}) is True

    @pytest.mark.parametrize("value", FALSY)
    def test_falsy_values(self, value):
        assert env_flag("X", environ={"X": value}) is False

    def test_unset_is_false(self):
        assert env_flag("X", environ={}) is False

    def test_reads_process_environment_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert env_flag("REPRO_TEST_FLAG") is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert env_flag("REPRO_TEST_FLAG") is False
        monkeypatch.delenv("REPRO_TEST_FLAG")
        assert env_flag("REPRO_TEST_FLAG") is False

    def test_false_words_are_the_documented_set(self):
        assert FALSE_WORDS == frozenset({"", "0", "false", "no", "off"})


class TestFastpathGate:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "1")
        assert fastpath_enabled(True) is True
        monkeypatch.delenv(FASTPATH_ENV)
        assert fastpath_enabled(False) is False

    @pytest.mark.parametrize("value", FALSY)
    def test_falsy_env_leaves_fastpath_on(self, value, monkeypatch):
        # The original bug: REPRO_SIM_NO_FASTPATH=0 disabled the fast path.
        monkeypatch.setenv(FASTPATH_ENV, value)
        assert fastpath_enabled() is True

    @pytest.mark.parametrize("value", TRUTHY)
    def test_truthy_env_disables_fastpath(self, value, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, value)
        assert fastpath_enabled() is False


class TestNativeGate:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        assert native_enabled(True) is True
        monkeypatch.delenv(NO_NATIVE_ENV)
        assert native_enabled(False) is False

    @pytest.mark.parametrize("value", FALSY)
    def test_falsy_env_leaves_native_on(self, value, monkeypatch):
        monkeypatch.setenv(NO_NATIVE_ENV, value)
        assert native_enabled() is True

    @pytest.mark.parametrize("value", TRUTHY)
    def test_truthy_env_disables_native(self, value, monkeypatch):
        monkeypatch.setenv(NO_NATIVE_ENV, value)
        assert native_enabled() is False


class TestNumpyGate:
    def test_npsupport_routes_through_env_flag(self):
        # npsupport evaluates its gate at import time, so the semantics
        # can't be probed by monkeypatching here; pin the wiring instead.
        import ast
        import inspect

        import repro.common.npsupport as npsupport

        tree = ast.parse(inspect.getsource(npsupport))
        calls = [
            node for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and getattr(node.func, "id", None) == "env_flag"
        ]
        assert calls, "npsupport no longer gates numpy through env_flag"
        assert NO_NUMPY_ENV == "REPRO_SIM_NO_NUMPY"
