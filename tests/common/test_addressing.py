"""Tests for repro.common.addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addressing import (
    BLOCK_BYTES_DEFAULT,
    block_address,
    block_of,
    byte_address,
    is_power_of_two,
    log2_exact,
)


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_zero(self):
        assert not is_power_of_two(0)

    def test_rejects_negative(self):
        assert not is_power_of_two(-4)

    def test_rejects_non_powers(self):
        for value in (3, 5, 6, 7, 9, 12, 100, 1000):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_known_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(2) == 1
        assert log2_exact(64) == 6
        assert log2_exact(65536) == 16

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(48)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)

    @given(st.integers(min_value=0, max_value=60))
    def test_roundtrip_with_shift(self, exponent):
        assert log2_exact(1 << exponent) == exponent


class TestBlockConversions:
    def test_block_of_default_block_size(self):
        assert block_of(0) == 0
        assert block_of(63) == 0
        assert block_of(64) == 1
        assert block_of(130) == 2

    def test_block_of_custom_block_size(self):
        assert block_of(256, block_bytes=128) == 2

    def test_block_address_is_alias(self):
        assert block_address(1000) == block_of(1000)

    def test_byte_address_inverts_block_of_for_aligned(self):
        assert byte_address(5) == 5 * BLOCK_BYTES_DEFAULT

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_block_of_byte_address_roundtrip(self, block):
        assert block_of(byte_address(block)) == block

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_block_of_stable_within_block(self, addr):
        base = block_of(addr)
        assert block_of(addr - addr % BLOCK_BYTES_DEFAULT) == base
