"""Guard: every bench module must stay importable (no stale imports).

The benches are only executed with ``--benchmark-only``, so a broken import
would otherwise surface only during the (slow) bench run.
"""

import importlib
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
BENCH_MODULES = sorted(
    path.stem for path in BENCH_DIR.glob("test_*.py")
)


def test_expected_bench_count():
    # One bench file per experiment in DESIGN.md's index.
    assert len(BENCH_MODULES) == 17


@pytest.mark.parametrize("module_name", BENCH_MODULES)
def test_bench_module_imports(module_name):
    module = importlib.import_module(f"benchmarks.{module_name}")
    bench_functions = [
        name for name in dir(module) if name.startswith("test_")
    ]
    assert bench_functions, f"{module_name} defines no bench functions"
