"""Tests for multi-programmed workload mixes."""

import pytest

from repro.common.errors import ConfigError
from repro.trace.stats import compute_trace_statistics
from repro.workloads.multiprogram import ADDRESS_SLICE_BLOCKS, MultiprogramMix


def generate_mix(names=("swaptions", "canneal"), threads=4, accesses=8_000):
    return MultiprogramMix(names).generate(
        num_threads=threads, scale=128, target_accesses=accesses, seed=5
    )


class TestMultiprogramMix:
    def test_requires_two_components(self):
        with pytest.raises(ConfigError):
            MultiprogramMix(["canneal"])

    def test_requires_enough_cores(self):
        with pytest.raises(ConfigError):
            MultiprogramMix(["canneal", "dedup", "water"]).generate(
                num_threads=2, scale=128, target_accesses=100
            )

    def test_name(self):
        assert MultiprogramMix(["x264", "water"]).name == "mix(x264+water)"

    def test_components_on_disjoint_cores(self):
        trace = generate_mix()
        # Components split 4 cores as [0,1] and [2,3]; address slices tell
        # us which component each access belongs to.
        for access in trace:
            component = access.addr // (ADDRESS_SLICE_BLOCKS * 64)
            expected_cores = {0, 1} if component == 0 else {2, 3}
            assert access.tid in expected_cores

    def test_no_cross_component_sharing(self):
        trace = generate_mix()
        stats = compute_trace_statistics(trace)
        # swaptions is nearly private and canneal's threads share, but no
        # block is ever shared ACROSS components; with a sharing-free first
        # component the mix's sharing comes only from within canneal.
        slice_bytes = ADDRESS_SLICE_BLOCKS * 64
        seen = {}
        for access in trace:
            component = access.addr // slice_bytes
            block = access.addr // 64
            seen.setdefault(block, set()).add(component)
        assert all(len(components) == 1 for components in seen.values())

    def test_total_length(self):
        trace = generate_mix(accesses=8_000)
        assert len(trace) == 8_000

    def test_deterministic(self):
        a = generate_mix()
        b = generate_mix()
        assert list(a.addrs) == list(b.addrs)
        assert list(a.tids) == list(b.tids)

    def test_uneven_core_split(self):
        trace = MultiprogramMix(["swaptions", "water", "dedup"]).generate(
            num_threads=8, scale=128, target_accesses=6_000, seed=1
        )
        # 8 cores over 3 programs: 2 + 2 + 4.
        assert trace.num_threads <= 8

    def test_multithreaded_sharing_preserved_within_component(self):
        trace = generate_mix(names=("streamcluster", "swaptions"))
        stats = compute_trace_statistics(trace)
        # streamcluster's internal sharing survives the mix.
        assert stats.shared_blocks > 0
