"""Tests for repro.workloads.layout."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.layout import PcAllocator, Region, RegionAllocator


class TestRegion:
    def test_block_indexing(self):
        region = Region("r", base_block=100, num_blocks=10)
        assert region.block(0) == 100
        assert region.block(9) == 109

    def test_block_wraps_modulo(self):
        region = Region("r", 100, 10)
        assert region.block(10) == 100
        assert region.block(25) == 105

    def test_byte_addr(self):
        region = Region("r", 2, 4)
        assert region.byte_addr(1) == 3 * 64

    def test_split_even(self):
        parts = Region("r", 0, 12).split(3)
        assert [(p.base_block, p.num_blocks) for p in parts] == [
            (0, 4), (4, 4), (8, 4),
        ]

    def test_split_uneven_gives_slack_to_last(self):
        parts = Region("r", 0, 10).split(3)
        assert [p.num_blocks for p in parts] == [3, 3, 4]
        assert sum(p.num_blocks for p in parts) == 10

    def test_split_pieces_disjoint_and_contiguous(self):
        parts = Region("r", 50, 23).split(4)
        cursor = 50
        for part in parts:
            assert part.base_block == cursor
            cursor += part.num_blocks
        assert cursor == 73

    def test_split_too_many_pieces(self):
        with pytest.raises(ConfigError):
            Region("r", 0, 3).split(4)

    def test_split_zero_pieces(self):
        with pytest.raises(ConfigError):
            Region("r", 0, 3).split(0)


class TestRegionAllocator:
    def test_regions_are_disjoint_with_guard(self):
        allocator = RegionAllocator()
        a = allocator.allocate("a", 100)
        b = allocator.allocate("b", 50)
        assert b.base_block >= a.base_block + a.num_blocks + RegionAllocator.GUARD_BLOCKS

    def test_many_allocations_never_overlap(self):
        allocator = RegionAllocator()
        regions = [allocator.allocate(f"r{i}", 10 + i) for i in range(50)]
        occupied = set()
        for region in regions:
            blocks = set(range(region.base_block, region.base_block + region.num_blocks))
            assert not (blocks & occupied)
            occupied |= blocks

    def test_rejects_empty_region(self):
        with pytest.raises(ConfigError):
            RegionAllocator().allocate("zero", 0)


class TestPcAllocator:
    def test_ranges_disjoint(self):
        allocator = PcAllocator()
        a = allocator.allocate(8)
        b = allocator.allocate(8)
        assert b >= a + 4 * 8

    def test_rejects_empty_range(self):
        with pytest.raises(ConfigError):
            PcAllocator().allocate(0)

    def test_base_is_code_like(self):
        assert PcAllocator().allocate() >= 0x400000
