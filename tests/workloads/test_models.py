"""Tests for the application models and registry."""

import pytest

from repro.common.errors import ConfigError
from repro.trace.stats import compute_trace_statistics
from repro.workloads.base import GeneratorContext, WorkloadModel
from repro.workloads.registry import (
    SUITES,
    get_workload,
    iter_workloads,
    workload_names,
    workloads_in_suite,
)

GENERATE_KWARGS = dict(num_threads=4, scale=64, target_accesses=8_000, seed=1)


class TestRegistry:
    def test_nineteen_models(self):
        assert len(workload_names()) == 19

    def test_suite_membership(self):
        assert len(workloads_in_suite("parsec")) == 10
        assert len(workloads_in_suite("splash2")) == 6
        assert len(workloads_in_suite("specomp")) == 3

    def test_every_model_has_metadata(self):
        for model in iter_workloads():
            assert model.name
            assert model.suite in SUITES
            assert model.description

    def test_get_workload_unknown(self):
        with pytest.raises(ConfigError):
            get_workload("doom")

    def test_unknown_suite(self):
        with pytest.raises(ConfigError):
            workloads_in_suite("specfp")

    def test_instances_are_fresh(self):
        assert get_workload("canneal") is not get_workload("canneal")


@pytest.mark.parametrize("name", workload_names())
class TestEveryModelGenerates:
    def test_generates_exact_length(self, name):
        trace = get_workload(name).generate(**GENERATE_KWARGS)
        assert len(trace) == GENERATE_KWARGS["target_accesses"]

    def test_thread_count_respected(self, name):
        trace = get_workload(name).generate(**GENERATE_KWARGS)
        assert trace.num_threads <= GENERATE_KWARGS["num_threads"]
        assert max(trace.tids) < GENERATE_KWARGS["num_threads"]

    def test_deterministic(self, name):
        a = get_workload(name).generate(**GENERATE_KWARGS)
        b = get_workload(name).generate(**GENERATE_KWARGS)
        assert list(a.addrs) == list(b.addrs)
        assert list(a.tids) == list(b.tids)
        assert list(a.pcs) == list(b.pcs)

    def test_seed_changes_trace(self, name):
        kwargs = dict(GENERATE_KWARGS)
        a = get_workload(name).generate(**kwargs)
        kwargs["seed"] = 2
        b = get_workload(name).generate(**kwargs)
        assert list(a.tids) != list(b.tids) or list(a.addrs) != list(b.addrs)


class TestSharingSpectrum:
    """The suite must span the paper's sharing spectrum."""

    def stats_for(self, name):
        trace = get_workload(name).generate(
            num_threads=4, scale=64, target_accesses=20_000, seed=3
        )
        return compute_trace_statistics(trace)

    def test_blackscholes_nearly_private(self):
        assert self.stats_for("blackscholes").shared_access_fraction < 0.10

    def test_swaptions_nearly_private(self):
        assert self.stats_for("swaptions").shared_access_fraction < 0.10

    def test_streamcluster_sharing_heavy(self):
        assert self.stats_for("streamcluster").shared_access_fraction > 0.5

    def test_canneal_has_diffuse_sharing(self):
        stats = self.stats_for("canneal")
        assert stats.shared_block_fraction > 0.02
        assert stats.footprint_blocks > 4000  # capacity-stressing graph

    def test_stencils_share_only_band_edges(self):
        for name in ("ocean", "swim"):
            stats = self.stats_for(name)
            assert 0.0 < stats.shared_block_fraction < 0.2


class TestGeneratorContext:
    def test_scaled_floors_at_minimum(self):
        ctx = GeneratorContext(num_threads=2, scale=1024, seed=0)
        assert ctx.scaled(16) == GeneratorContext.MIN_REGION_BLOCKS

    def test_scaled_divides(self):
        ctx = GeneratorContext(num_threads=2, scale=16, seed=0)
        assert ctx.scaled(160) == 10

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            GeneratorContext(num_threads=0, scale=1, seed=0)
        with pytest.raises(ConfigError):
            GeneratorContext(num_threads=1, scale=0, seed=0)


class TestWorkloadModelFramework:
    def test_empty_phase_detected(self):
        class Lazy(WorkloadModel):
            name = "lazy"
            suite = "parsec"

            def setup(self, ctx):
                pass

            def phase(self, ctx, iteration):
                pass  # never emits anything

        with pytest.raises(ConfigError, match="emitted no accesses"):
            Lazy().generate(num_threads=1, scale=1, target_accesses=10)

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            get_workload("water").generate(target_accesses=0)

    def test_repr_mentions_name(self):
        assert "water" in repr(get_workload("water"))


class TestNewModels:
    """The four later-added models must exhibit their template patterns."""

    def stats_for(self, name):
        trace = get_workload(name).generate(
            num_threads=4, scale=64, target_accesses=20_000, seed=3
        )
        return compute_trace_statistics(trace)

    def test_ferret_has_pipeline_and_database_sharing(self):
        stats = self.stats_for("ferret")
        assert stats.shared_access_fraction > 0.3

    def test_facesim_band_edge_plus_migratory(self):
        stats = self.stats_for("facesim")
        assert 0.0 < stats.shared_block_fraction < 0.5

    def test_fft_transpose_shares_matrices(self):
        stats = self.stats_for("fft")
        # Transposed matrices are written by all threads over time.
        assert stats.shared_block_fraction > 0.3

    def test_applu_is_stencil_like(self):
        stats = self.stats_for("applu")
        assert stats.shared_block_fraction < 0.3
