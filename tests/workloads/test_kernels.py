"""Tests for the sharing kernels (repro.workloads.kernels)."""

import pytest

from repro.common.rng import DeterministicRng
from repro.workloads import kernels
from repro.workloads.layout import Region

BLOCK = 64


def empty_streams(num_threads):
    return [[] for __ in range(num_threads)]


def touched_blocks(stream):
    return {addr // BLOCK for __, addr, __w in stream}


def region_blocks(region):
    return set(range(region.base_block, region.base_block + region.num_blocks))


class TestSkewedIndex:
    def test_uniform_covers_range(self):
        rng = DeterministicRng(1)
        seen = {kernels.skewed_index(rng, 8, 1.0) for __ in range(500)}
        assert seen == set(range(8))

    def test_skew_biases_low_indices(self):
        rng = DeterministicRng(1)
        samples = [kernels.skewed_index(rng, 1000, 4.0) for __ in range(2000)]
        low = sum(1 for s in samples if s < 100)
        assert low > len(samples) * 0.4  # uniform would give ~10%

    def test_bounds(self):
        rng = DeterministicRng(1)
        for skew in (1.0, 2.0, 8.0):
            for __ in range(200):
                assert 0 <= kernels.skewed_index(rng, 7, skew) < 7


class TestPrivateStream:
    def test_each_thread_stays_in_own_region(self):
        streams = empty_streams(2)
        regions = [Region("a", 0, 16), Region("b", 100, 16)]
        kernels.emit_private_stream(streams, regions, pc=0x10)
        assert touched_blocks(streams[0]) == region_blocks(regions[0])
        assert touched_blocks(streams[1]) == region_blocks(regions[1])

    def test_sequential_order(self):
        streams = empty_streams(1)
        kernels.emit_private_stream(streams, [Region("a", 5, 8)], pc=0x10)
        addresses = [addr for __, addr, __w in streams[0]]
        assert addresses == [(5 + i) * BLOCK for i in range(8)]

    def test_passes_and_stride(self):
        streams = empty_streams(1)
        kernels.emit_private_stream(
            streams, [Region("a", 0, 8)], pc=0, passes=2, stride_blocks=2
        )
        assert len(streams[0]) == 8  # 4 per pass x 2 passes

    def test_write_fraction(self):
        streams = empty_streams(1)
        kernels.emit_private_stream(
            streams, [Region("a", 0, 1000)], pc=0,
            write_fraction=0.5, rng=DeterministicRng(3),
        )
        writes = sum(1 for __, __a, w in streams[0] if w)
        assert 300 < writes < 700

    def test_no_writes_without_rng(self):
        streams = empty_streams(1)
        kernels.emit_private_stream(streams, [Region("a", 0, 16)], pc=0)
        assert not any(w for __, __a, w in streams[0])


class TestPrivateHotset:
    def test_count_and_region_confinement(self):
        streams = empty_streams(2)
        regions = [Region("a", 0, 8), Region("b", 50, 8)]
        kernels.emit_private_hotset(
            streams, DeterministicRng(1), regions, pc=0, accesses_per_thread=100
        )
        for tid in (0, 1):
            assert len(streams[tid]) == 100
            assert touched_blocks(streams[tid]) <= region_blocks(regions[tid])


class TestSharedReadonly:
    def test_all_threads_read_shared_region(self):
        streams = empty_streams(3)
        region = Region("table", 0, 32)
        kernels.emit_shared_readonly(
            streams, DeterministicRng(1), region, pc=0, accesses_per_thread=50
        )
        for stream in streams:
            assert len(stream) == 50
            assert touched_blocks(stream) <= region_blocks(region)
            assert not any(w for __, __a, w in stream)

    def test_thread_subset(self):
        streams = empty_streams(4)
        kernels.emit_shared_readonly(
            streams, DeterministicRng(1), Region("t", 0, 8), pc=0,
            accesses_per_thread=10, threads=[1, 3],
        )
        assert [len(s) for s in streams] == [0, 10, 0, 10]


class TestSharedRwRandom:
    def test_mixes_reads_and_writes(self):
        streams = empty_streams(2)
        kernels.emit_shared_rw_random(
            streams, DeterministicRng(1), Region("g", 0, 64), pc=0,
            accesses_per_thread=200, write_fraction=0.5,
        )
        for stream in streams:
            writes = sum(1 for __, __a, w in stream if w)
            assert 0 < writes < 200


class TestProducerConsumer:
    def test_producer_writes_consumer_reads(self):
        streams = empty_streams(2)
        buffers = [Region("b0", 0, 8), Region("b1", 100, 8)]
        kernels.emit_producer_consumer(streams, buffers, 0x10, 0x20)
        # Thread 0 writes buffer 0 and reads buffer 1 (hop from thread 1).
        writes0 = [(a, w) for pc, a, w in streams[0] if pc == 0x10]
        reads0 = [(a, w) for pc, a, w in streams[0] if pc == 0x20]
        assert all(w for __, w in writes0)
        assert all(not w for __, w in reads0)
        assert {a // BLOCK for a, __ in writes0} == region_blocks(buffers[0])
        assert {a // BLOCK for a, __ in reads0} == region_blocks(buffers[1])

    def test_writes_precede_reads_per_thread(self):
        streams = empty_streams(2)
        buffers = [Region("b0", 0, 4), Region("b1", 50, 4)]
        kernels.emit_producer_consumer(streams, buffers, 1, 2)
        pcs = [pc for pc, __a, __w in streams[0]]
        assert pcs.index(2) > pcs.index(1)

    def test_multi_hop(self):
        streams = empty_streams(3)
        buffers = [Region(f"b{i}", i * 100, 4) for i in range(3)]
        kernels.emit_producer_consumer(streams, buffers, 1, 2, hops=2)
        # With hops=2 each buffer is read by two downstream threads.
        reads_of_b0 = sum(
            1 for stream in streams for pc, a, w in stream
            if pc == 2 and a // BLOCK in region_blocks(buffers[0])
        )
        assert reads_of_b0 == 2 * buffers[0].num_blocks


class TestMigratory:
    def test_items_visit_multiple_threads(self):
        streams = empty_streams(4)
        kernels.emit_migratory(
            streams, DeterministicRng(5), Region("m", 0, 64), pc=0,
            items=20, hops=3,
        )
        active = [tid for tid, s in enumerate(streams) if s]
        assert len(active) >= 2

    def test_rmw_pattern(self):
        streams = empty_streams(2)
        kernels.emit_migratory(
            streams, DeterministicRng(5), Region("m", 0, 8), pc=0,
            items=1, item_blocks=1, hops=1, rmw_repeats=1,
        )
        stream = next(s for s in streams if s)
        assert [w for __, __a, w in stream] == [False, True]


class TestHaloExchange:
    def test_compute_touches_own_band_only(self):
        streams = empty_streams(2)
        grid = Region("g", 0, 16)  # 8 rows of 2 blocks, 4 rows per thread
        kernels.emit_halo_exchange(streams, grid, row_blocks=2,
                                   pc_compute=1, pc_halo=2)
        compute0 = {a // BLOCK for pc, a, __ in streams[0] if pc == 1}
        compute1 = {a // BLOCK for pc, a, __ in streams[1] if pc == 1}
        assert compute0 == set(range(0, 8))
        assert compute1 == set(range(8, 16))

    def test_halo_reads_cross_band_boundary(self):
        streams = empty_streams(2)
        grid = Region("g", 0, 16)
        kernels.emit_halo_exchange(streams, grid, row_blocks=2,
                                   pc_compute=1, pc_halo=2)
        halo0 = {a // BLOCK for pc, a, __ in streams[0] if pc == 2}
        halo1 = {a // BLOCK for pc, a, __ in streams[1] if pc == 2}
        assert halo0 == {8, 9}    # thread 0 reads thread 1's first row
        assert halo1 == {6, 7}    # thread 1 reads thread 0's last row

    def test_halo_accesses_are_reads(self):
        streams = empty_streams(2)
        kernels.emit_halo_exchange(streams, Region("g", 0, 16), 2, 1, 2)
        for stream in streams:
            assert not any(w for pc, __a, w in stream if pc == 2)

    def test_interior_read_write_pairs(self):
        streams = empty_streams(1)
        kernels.emit_halo_exchange(streams, Region("g", 0, 4), 2, 1, 2)
        flags = [w for pc, __a, w in streams[0] if pc == 1]
        assert flags == [False, True] * 4


class TestReduction:
    def test_partials_written_then_combined(self):
        streams = empty_streams(4)
        partials = [Region(f"p{i}", i * 10, 2) for i in range(4)]
        kernels.emit_reduction(streams, partials, pc_write=1, pc_combine=2)
        # Every thread writes its own partial region.
        for tid in range(4):
            writes = {a // BLOCK for pc, a, w in streams[tid] if pc == 1}
            assert writes == region_blocks(partials[tid])
        # Thread 0 eventually reads thread 1's and thread 2's partials.
        reads0 = {a // BLOCK for pc, a, w in streams[0] if pc == 2 and not w}
        assert region_blocks(partials[1]) <= reads0
        assert region_blocks(partials[2]) <= reads0

    def test_single_thread_reduction_has_no_combines(self):
        streams = empty_streams(1)
        kernels.emit_reduction(streams, [Region("p", 0, 2)], 1, 2)
        assert all(pc == 1 for pc, __a, __w in streams[0])


class TestLockHotspot:
    def test_all_threads_rmw_lock_region(self):
        streams = empty_streams(3)
        region = Region("locks", 0, 2)
        kernels.emit_lock_hotspot(
            streams, DeterministicRng(1), region, pc=9, rounds_per_thread=10
        )
        for stream in streams:
            assert len(stream) == 20  # read+write per round
            assert touched_blocks(stream) <= region_blocks(region)
            flags = [w for __, __a, w in stream]
            assert flags == [False, True] * 10


class TestTaskQueue:
    def test_queue_and_task_traffic(self):
        streams = empty_streams(2)
        queue, tasks = Region("q", 0, 2), Region("t", 100, 32)
        kernels.emit_task_queue(
            streams, DeterministicRng(1), queue, tasks,
            pc_queue=1, pc_task=2, num_tasks=40, task_blocks=4,
        )
        all_accesses = streams[0] + streams[1]
        queue_accesses = [a for pc, a, w in all_accesses if pc == 1]
        task_accesses = [a for pc, a, w in all_accesses if pc == 2]
        assert len(queue_accesses) == 80  # RMW per task
        assert {a // BLOCK for a in queue_accesses} <= region_blocks(queue)
        assert {a // BLOCK for a in task_accesses} <= region_blocks(tasks)


class TestBroadcast:
    def test_writer_then_readers(self):
        streams = empty_streams(3)
        region = Region("frame", 0, 8)
        kernels.emit_broadcast(streams, region, writer_tid=1,
                               pc_write=1, pc_read=2)
        assert all(w for __, __a, w in streams[1])
        assert len(streams[1]) == 8
        for tid in (0, 2):
            assert len(streams[tid]) == 8
            assert not any(w for __, __a, w in streams[tid])

    def test_reader_passes(self):
        streams = empty_streams(2)
        kernels.emit_broadcast(streams, Region("f", 0, 4), 0, 1, 2,
                               reader_passes=3)
        assert len(streams[1]) == 12
