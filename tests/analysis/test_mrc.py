"""Tests for miss-ratio-curve computation."""

import pytest

from repro.analysis.mrc import compute_mrc
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy
from repro.sim.engine import LlcOnlySimulator
from tests.conftest import read_stream


class TestComputeMrc:
    def test_monotone_non_increasing(self):
        blocks = [b % 30 for b in range(2000)]
        curve = compute_mrc(read_stream(blocks), [4, 8, 16, 32, 64])
        ratios = [r for __, r in curve.points]
        assert ratios == sorted(ratios, reverse=True)

    def test_cold_stream_all_misses(self):
        curve = compute_mrc(read_stream(list(range(100))), [8, 64])
        assert all(r == 1.0 for __, r in curve.points)

    def test_fitting_working_set_converges_to_cold_ratio(self):
        blocks = [b % 10 for b in range(1000)]
        curve = compute_mrc(read_stream(blocks), [16])
        assert curve.miss_ratio_at(16) == pytest.approx(10 / 1000)

    def test_matches_simulated_fully_associative_lru(self):
        import random

        rng = random.Random(3)
        blocks = [rng.randrange(50) for __ in range(4000)]
        stream = read_stream(blocks)
        capacity = 16
        curve = compute_mrc(stream, [capacity])
        # Fully-associative LRU of `capacity` blocks == 1 set x capacity ways.
        geometry = CacheGeometry(capacity * 64, capacity)
        # Map every block to set 0 by construction: 1-set geometry does it.
        simulated = LlcOnlySimulator(geometry, LruPolicy()).run(stream)
        assert curve.miss_ratio_at(capacity) == pytest.approx(
            simulated.miss_ratio
        )

    def test_knee_capacity(self):
        blocks = [b % 20 for b in range(2000)]
        curve = compute_mrc(read_stream(blocks), [4, 8, 32])
        assert curve.knee_capacity(threshold=0.5) == 32

    def test_knee_falls_back_to_largest(self):
        curve = compute_mrc(read_stream(list(range(100))), [4, 8])
        assert curve.knee_capacity() == 8

    def test_unknown_capacity_rejected(self):
        curve = compute_mrc(read_stream([1, 2]), [4])
        with pytest.raises(ConfigError):
            curve.miss_ratio_at(5)

    def test_empty_capacities_rejected(self):
        with pytest.raises(ConfigError):
            compute_mrc(read_stream([1]), [])

    def test_capacity_beyond_depth_rejected(self):
        with pytest.raises(ConfigError):
            compute_mrc(read_stream([1]), [1 << 20], max_depth=1 << 10)

    def test_curve_metadata(self):
        stream = read_stream([1, 2, 3])
        curve = compute_mrc(stream, [8])
        assert curve.accesses == 3
        assert curve.stream_name == stream.name
