"""Tests for the analysis/reporting helpers."""

import pytest

from repro.analysis.aggregate import amean, append_summary_rows, gmean_speedups
from repro.analysis.csvout import write_csv
from repro.analysis.series import FigureSeries, render_series
from repro.analysis.tables import format_cell, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(0.123456) == "0.1235"
        assert format_cell(0.1, float_digits=2) == "0.10"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_and_str(self):
        assert format_cell(42) == "42"
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment_and_structure(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| name")
        assert set(lines[1]) <= {"|", "-"}
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = render_table(["h"], [["x"]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_markdown_compatible(self):
        text = render_table(["a", "b"], [[1, 2]])
        assert "| a | b |" in text.replace("  ", " ")


class TestAggregate:
    def test_amean(self):
        assert amean([1.0, 2.0, 3.0]) == 2.0
        assert amean([]) == 0.0

    def test_gmean(self):
        assert gmean_speedups([1.0, 4.0]) == pytest.approx(2.0)

    def test_append_summary_rows(self):
        rows = [["a", 1.0, 10], ["b", 3.0, 20]]
        append_summary_rows(rows, numeric_columns=[1], label="avg")
        assert rows[-1][0] == "avg"
        assert rows[-1][1] == 2.0
        assert rows[-1][2] == ""

    def test_append_summary_empty(self):
        rows = []
        assert append_summary_rows(rows, [1]) == []


class TestCsvOut:
    def test_writes_headers_and_rows(self, tmp_path):
        path = write_csv(tmp_path / "out" / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content == ["a,b", "1,2", "3,4"]


class TestFigureSeries:
    def test_add_points_and_columns(self):
        figure = FigureSeries("F1", "workload")
        figure.add_point("canneal", "lru", 0.5)
        figure.add_point("canneal", "opt", 0.3)
        figure.add_point("dedup", "lru", 0.6)
        figure.add_point("dedup", "opt", 0.4)
        assert figure.x_values == ["canneal", "dedup"]
        assert figure.column("opt") == [0.3, 0.4]

    def test_validate_catches_ragged(self):
        figure = FigureSeries("F1", "x")
        figure.add_point("a", "s1", 1.0)
        figure.add_point("b", "s1", 2.0)
        figure.add_point("a", "s2", 1.0)  # s2 missing point for "b"
        with pytest.raises(ValueError):
            figure.validate()

    def test_render(self):
        figure = FigureSeries("F9", "app")
        figure.add_point("a", "metric", 0.25)
        text = render_series(figure)
        assert "[F9]" in text
        assert "0.2500" in text


class TestGroupMeans:
    def test_per_group_rows(self):
        from repro.analysis.aggregate import append_group_means

        rows = [["a1", 1.0], ["a2", 3.0], ["b1", 10.0]]
        append_group_means(rows, [1], group_of=lambda name: name[0])
        assert rows[-2] == ["mean/a", 2.0]
        assert rows[-1] == ["mean/b", 10.0]

    def test_empty(self):
        from repro.analysis.aggregate import append_group_means

        assert append_group_means([], [1], group_of=str) == []

    def test_group_order_is_first_appearance(self):
        from repro.analysis.aggregate import append_group_means

        rows = [["b1", 1.0], ["a1", 2.0], ["b2", 3.0]]
        append_group_means(rows, [1], group_of=lambda name: name[0])
        assert [row[0] for row in rows[-2:]] == ["mean/b", "mean/a"]


class TestFailedCells:
    """Graceful-mode CellFailure placeholders render as an explicit token,
    never as a dataclass repr leaking into a table or CSV."""

    @staticmethod
    def failure():
        from repro.sim.results import CellFailure

        return CellFailure(
            kind="compare", workload="water", params=("lru",),
            error_type="RuntimeError", error="boom", attempts=3,
        )

    def test_format_cell_renders_failed_token(self):
        from repro.analysis.tables import FAILED_CELL

        assert format_cell(self.failure()) == FAILED_CELL
        assert FAILED_CELL == "FAILED"

    def test_render_table_shows_failed_not_repr(self):
        text = render_table(
            ["workload", "lru"], [["water", self.failure()], ["fft", 0.5]]
        )
        assert "FAILED" in text
        assert "CellFailure" not in text
        assert "boom" not in text

    def test_write_csv_substitutes_failed_token(self, tmp_path):
        path = write_csv(
            tmp_path / "out.csv", ["workload", "lru"],
            [["water", self.failure()], ["fft", 0.5]],
        )
        content = path.read_text()
        assert "water,FAILED" in content
        assert "CellFailure" not in content
        assert "fft,0.5" in content
