"""Shared hypothesis strategy library for the whole test fleet.

Every property suite used to carry its own ad-hoc copy of "a random list
of accesses"; they now come from here, so the stream shapes the
differential suites fuzz and the scenario space the fuzzing harness
samples stay in one place. Importing this module also registers the
``ci``/``nightly`` hypothesis profiles (selected via
``REPRO_SIM_HYPOTHESIS_PROFILE``) exactly once for everyone.

Two kinds of generators live here:

* **plain hypothesis strategies** over access tuples, streams, geometries,
  and policy configurations (`access_lists`, `stream_lists`,
  `geometries`, `policy_names`, `policy_seeds`);
* **wrappers over the library's own seeded samplers** (`kernel_mix_specs`,
  `fuzz_scenarios`) — hypothesis draws only a seed/index and the
  deterministic sampler in :mod:`repro.workloads.fuzzmix` /
  :mod:`repro.sim.fuzz` does the structured generation, so the tests
  exercise the exact same scenario space the fuzzing fleet sweeps.
"""

import os

from hypothesis import settings, strategies as st

from repro.common.config import CacheGeometry
from repro.common.rng import DeterministicRng
from repro.policies.registry import POLICY_NAMES

settings.register_profile(
    "ci", max_examples=25, deadline=None, derandomize=True
)
settings.register_profile("nightly", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("REPRO_SIM_HYPOTHESIS_PROFILE", "ci"))

REPLAY_PCS = (0x100, 0x200, 0x300)
"""Compact PC pool for replay-tier differential suites."""

SIGNATURE_PCS = (0x100, 0x2040, 0x85010)
"""PC pool whose values land on distinct SHiP signature-table entries."""


def access_lists(num_threads=2, max_addr=4096, max_pc=8, min_size=1,
                 max_size=400):
    """Random ``(tid, pc, addr, is_write)`` lists (full-hierarchy traces)."""
    return st.lists(
        st.tuples(
            st.integers(0, num_threads - 1),
            st.integers(0, max_pc - 1).map(lambda p: 0x400 + p * 4),
            st.integers(0, max_addr - 1),
            st.booleans(),
        ),
        min_size=min_size,
        max_size=max_size,
    )


def stream_lists(num_cores=2, max_block=64, max_pc=8, min_size=1,
                 max_size=400):
    """Random ``(core, pc, block, is_write)`` LLC stream access lists."""
    return st.lists(
        st.tuples(
            st.integers(0, num_cores - 1),
            st.integers(0, max_pc - 1).map(lambda p: 0x400 + p * 4),
            st.integers(0, max_block - 1),
            st.booleans(),
        ),
        min_size=min_size,
        max_size=max_size,
    )


def replay_stream_lists(pcs=REPLAY_PCS, num_cores=4, max_block=47,
                        min_size=1, max_size=250):
    """Stream lists shaped for the replay-tier differential suites.

    A small fixed PC pool (`pcs`) keeps PC-indexed policy state (SHiP
    signatures) colliding often enough to exercise it; pass
    :data:`SIGNATURE_PCS` for distinct signature-table rows instead.
    """
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=num_cores - 1),
            st.sampled_from(list(pcs)),
            st.integers(min_value=0, max_value=max_block),
            st.booleans(),
        ),
        min_size=min_size,
        max_size=max_size,
    )


def geometries(max_set_bits=4, ways=(1, 2, 4, 8), block_bytes=64):
    """Valid :class:`CacheGeometry` draws (power-of-two sets x ways)."""
    return st.builds(
        lambda set_bits, way: CacheGeometry(
            (1 << set_bits) * way * block_bytes, way, block_bytes
        ),
        st.integers(0, max_set_bits),
        st.sampled_from(list(ways)),
    )


def policy_names():
    """One registered replacement-policy name (sorted for derandomize)."""
    return st.sampled_from(sorted(POLICY_NAMES))


def policy_seeds(max_seed=2**16):
    """Replay seeds for stochastic policies."""
    return st.integers(0, max_seed)


def policy_configs(max_seed=2**16):
    """``(policy_name, seed)`` pairs — one replayable policy config."""
    return st.tuples(policy_names(), policy_seeds(max_seed))


def kernel_mix_specs(llc_blocks=512, num_threads=4, max_seed=2**20):
    """Sampled sharing-kernel mix specs from the fuzz generator space.

    Hypothesis draws only the seed; the structured spec comes from
    :func:`repro.workloads.fuzzmix.sample_kernel_mix` — the exact sampler
    the fuzzing fleet uses, so shrinking stays meaningful (it shrinks the
    seed, and every seed is a valid scenario).
    """
    from repro.workloads.fuzzmix import sample_kernel_mix

    return st.integers(0, max_seed).map(
        lambda seed: sample_kernel_mix(
            DeterministicRng(seed), llc_blocks, num_threads
        )
    )


def fuzz_scenarios(seed=42, scenarios=64, mix_fraction=0.25):
    """Whole fuzz scenarios drawn from a campaign's sample space."""
    from repro.sim.fuzz import FuzzConfig, sample_scenario

    config = FuzzConfig(
        seed=seed, scenarios=scenarios, mix_fraction=mix_fraction
    )
    return st.integers(0, config.total_scenarios - 1).map(
        lambda index: sample_scenario(config, index)
    )


# ----------------------------------------------------------------------
# Telemetry run records (experiment-store ingest suites)
# ----------------------------------------------------------------------

RUN_COMMANDS = ("compare", "sweep", "oracle", "fuzz", "bench")
RUN_STATUSES = ("completed", "completed_with_failures", "failed", "running")
EVENT_KINDS = ("span", "cells_start", "cell_done", "cell_retry",
               "cell_failed", "cells_done", "artifact")
_NAME_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789_"


def _names(min_size=1, max_size=16):
    return st.text(alphabet=_NAME_ALPHABET, min_size=min_size,
                   max_size=max_size)


def run_manifests():
    """Plausible-but-adversarial ``manifest.json`` payload dicts.

    Shapes the ingest pipeline must take losslessly: optional keys
    missing, lists empty, numeric fields absent. The caller supplies
    ``run_id``/``started`` (they come from the directory layout).
    """
    return st.fixed_dictionaries(
        {
            "format_version": st.just(1),
            "command": st.sampled_from(RUN_COMMANDS),
            "status": st.sampled_from(RUN_STATUSES),
        },
        optional={
            "machine": _names(),
            "llc": _names(),
            "seed": st.integers(0, 2**32 - 1),
            "wall_sec": st.floats(0, 1e4, allow_nan=False),
            "duration_s": st.floats(0, 1e4, allow_nan=False),
            "workloads": st.lists(_names(), max_size=4),
            "policies": st.lists(policy_names(), max_size=4),
            "argv": st.lists(_names(min_size=1, max_size=12), max_size=6),
            "cells": st.fixed_dictionaries({
                "total": st.integers(0, 32),
                "completed": st.integers(0, 32),
                "failed": st.integers(0, 8),
            }),
        },
    )


def telemetry_events(min_size=0, max_size=24):
    """Event-record lists as they land in ``events.jsonl``."""
    base = st.fixed_dictionaries(
        {
            "t": st.floats(0, 2e9, allow_nan=False),
            "pid": st.integers(1, 2**22),
            "role": st.sampled_from(("main", "worker")),
            "kind": st.sampled_from(EVENT_KINDS),
            "schema_version": st.just(1),
        },
        optional={
            "stage": _names(),
            "workload": _names(),
            "duration_s": st.floats(0, 1e3, allow_nan=False),
            "wall_sec": st.floats(0, 1e3, allow_nan=False),
        },
    )
    return st.lists(base, min_size=min_size, max_size=max_size)


def event_log_corruptions():
    """One corruption to inflict on an ``events.jsonl`` file.

    ``("truncate", frac)`` chops the file mid-line the way a SIGKILL
    does; the others append a line no JSON event parser should accept.
    Readers and ingest must drop the damage and keep every intact event.
    """
    return st.one_of(
        st.tuples(st.just("truncate"), st.floats(0.1, 0.95)),
        st.tuples(st.just("garbage"), st.binary(min_size=1, max_size=64)
                  .map(lambda b: b + b"\n")),
        st.tuples(st.just("non_dict"), st.sampled_from(
            (b"[1, 2, 3]\n", b'"spans"\n', b"42\n", b"null\n"))),
        st.tuples(st.just("blank"), st.just(b"\n\n")),
    )
