"""Tests for set-sampled LLC simulation."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.sampling import SampledLlcSimulator
from repro.workloads.registry import get_workload
from repro.sim.multipass import record_llc_stream

GEOMETRY = CacheGeometry(64 * 8 * 64, 8)  # 64 sets x 8 ways


def workload_stream(tiny_machine):
    trace = get_workload("canneal").generate(
        num_threads=2, scale=256, target_accesses=30_000, seed=4
    )
    stream, __ = record_llc_stream(trace, tiny_machine)
    return stream


class TestSampledLlcSimulator:
    def test_ratio_one_matches_full_simulation(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        full = LlcOnlySimulator(GEOMETRY, LruPolicy()).run(stream)
        sampled = SampledLlcSimulator(GEOMETRY, LruPolicy(),
                                      sample_ratio=1).run(stream)
        assert sampled.sampled_misses == full.misses
        assert sampled.sampled_accesses == full.accesses

    def test_sampled_miss_ratio_close_to_full(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        full = LlcOnlySimulator(GEOMETRY, LruPolicy()).run(stream)
        sampled = SampledLlcSimulator(GEOMETRY, LruPolicy(),
                                      sample_ratio=8).run(stream)
        assert sampled.miss_ratio == pytest.approx(full.miss_ratio, abs=0.05)

    def test_sample_covers_expected_fraction(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        sampled = SampledLlcSimulator(GEOMETRY, LruPolicy(),
                                      sample_ratio=8).run(stream)
        expected = len(stream) / 8
        assert sampled.sampled_accesses == pytest.approx(expected, rel=0.3)

    def test_offsets_partition_the_stream(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        total = sum(
            SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=4,
                                offset=offset).run(stream).sampled_accesses
            for offset in range(4)
        )
        assert total == len(stream)

    def test_estimated_misses_scaling(self):
        from repro.sim.sampling import SampledResult

        result = SampledResult("lru", "s", 4, 100, 40, 60)
        assert result.estimated_misses == 240
        assert result.miss_ratio == 0.6

    def test_invalid_ratio(self):
        with pytest.raises(ConfigError):
            SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=3)

    def test_invalid_offset(self):
        with pytest.raises(ConfigError):
            SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=4, offset=4)


class TestSamplingWithDuelingPolicies:
    def test_dip_binds_to_sampled_geometry(self, tiny_machine):
        """Set-dueling policies must bind cleanly to the shrunken sampled
        geometry (leader clamping) and produce sane estimates."""
        from repro.policies.dip import DipPolicy

        stream = workload_stream(tiny_machine)
        sampled = SampledLlcSimulator(GEOMETRY, DipPolicy(seed=1),
                                      sample_ratio=8).run(stream)
        assert 0.0 <= sampled.miss_ratio <= 1.0
        assert sampled.policy == "dip"

    def test_sampling_preserves_policy_ordering(self, tiny_machine):
        """If OPT-style orderings hold in full simulation they must hold in
        the sample: LIP beats LRU on a thrash-heavy canneal stream or ties."""
        from repro.policies.lru import LipPolicy

        stream = workload_stream(tiny_machine)
        lru = SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=4)
        lip = SampledLlcSimulator(GEOMETRY, LipPolicy(), sample_ratio=4)
        lru_result = lru.run(stream)
        lip_result = lip.run(stream)
        assert lru_result.sampled_accesses == lip_result.sampled_accesses
