"""Tests for set-sampled LLC simulation."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.policies.lru import LruPolicy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.sampling import (
    SampledLlcSimulator,
    sampled_geometry,
    sampled_substream,
)
from repro.workloads.registry import get_workload
from repro.sim.multipass import record_llc_stream

GEOMETRY = CacheGeometry(64 * 8 * 64, 8)  # 64 sets x 8 ways


def workload_stream(tiny_machine):
    trace = get_workload("canneal").generate(
        num_threads=2, scale=256, target_accesses=30_000, seed=4
    )
    stream, __ = record_llc_stream(trace, tiny_machine)
    return stream


class TestSampledLlcSimulator:
    def test_ratio_one_matches_full_simulation(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        full = LlcOnlySimulator(GEOMETRY, LruPolicy()).run(stream)
        sampled = SampledLlcSimulator(GEOMETRY, LruPolicy(),
                                      sample_ratio=1).run(stream)
        assert sampled.sampled_misses == full.misses
        assert sampled.sampled_accesses == full.accesses

    def test_sampled_miss_ratio_close_to_full(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        full = LlcOnlySimulator(GEOMETRY, LruPolicy()).run(stream)
        sampled = SampledLlcSimulator(GEOMETRY, LruPolicy(),
                                      sample_ratio=8).run(stream)
        assert sampled.miss_ratio == pytest.approx(full.miss_ratio, abs=0.05)

    def test_sample_covers_expected_fraction(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        sampled = SampledLlcSimulator(GEOMETRY, LruPolicy(),
                                      sample_ratio=8).run(stream)
        expected = len(stream) / 8
        assert sampled.sampled_accesses == pytest.approx(expected, rel=0.3)

    def test_offsets_partition_the_stream(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        total = sum(
            SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=4,
                                offset=offset).run(stream).sampled_accesses
            for offset in range(4)
        )
        assert total == len(stream)

    def test_estimated_misses_scaling(self):
        from repro.sim.sampling import SampledResult

        result = SampledResult("lru", "s", 4, 100, 40, 60)
        assert result.estimated_misses == 240
        assert result.miss_ratio == 0.6

    def test_invalid_ratio(self):
        with pytest.raises(ConfigError):
            SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=3)

    def test_invalid_offset(self):
        with pytest.raises(ConfigError):
            SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=4, offset=4)


class TestSamplingWithDuelingPolicies:
    def test_dip_binds_to_sampled_geometry(self, tiny_machine):
        """Set-dueling policies must bind cleanly to the shrunken sampled
        geometry (leader clamping) and produce sane estimates."""
        from repro.policies.dip import DipPolicy

        stream = workload_stream(tiny_machine)
        sampled = SampledLlcSimulator(GEOMETRY, DipPolicy(seed=1),
                                      sample_ratio=8).run(stream)
        assert 0.0 <= sampled.miss_ratio <= 1.0
        assert sampled.policy == "dip"

    def test_sampling_preserves_policy_ordering(self, tiny_machine):
        """If OPT-style orderings hold in full simulation they must hold in
        the sample: LIP beats LRU on a thrash-heavy canneal stream or ties."""
        from repro.policies.lru import LipPolicy

        stream = workload_stream(tiny_machine)
        lru = SampledLlcSimulator(GEOMETRY, LruPolicy(), sample_ratio=4)
        lip = SampledLlcSimulator(GEOMETRY, LipPolicy(), sample_ratio=4)
        lru_result = lru.run(stream)
        lip_result = lip.run(stream)
        assert lru_result.sampled_accesses == lip_result.sampled_accesses


class TestSeededSampleSelection:
    """Sample-set selection derives from the experiment seed (not module
    RNG state), so campaigns reproduce from ``(seed, label)`` alone."""

    def test_offset_is_deterministic_and_in_range(self):
        for seed in (0, 1, 42, 2**31):
            for ratio in (1, 2, 4, 8):
                offset = SampledLlcSimulator.offset_from_seed(
                    seed, ratio, "water"
                )
                assert offset == SampledLlcSimulator.offset_from_seed(
                    seed, ratio, "water"
                )
                assert 0 <= offset < ratio

    def test_labels_steer_the_offset(self):
        offsets = {
            SampledLlcSimulator.offset_from_seed(9, 16, label)
            for label in ("water", "fft", "canneal", "dedup", "radix")
        }
        assert len(offsets) > 1

    def test_seeds_steer_the_offset(self):
        offsets = {
            SampledLlcSimulator.offset_from_seed(seed, 16, "water")
            for seed in range(12)
        }
        assert len(offsets) > 1

    def test_invalid_ratio_raises(self):
        with pytest.raises(ConfigError):
            SampledLlcSimulator.offset_from_seed(1, 0, "water")

    def test_from_seed_matches_manual_offset(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        offset = SampledLlcSimulator.offset_from_seed(5, 4, stream.name)
        manual = SampledLlcSimulator(
            GEOMETRY, LruPolicy(), sample_ratio=4, offset=offset
        ).run(stream)
        seeded = SampledLlcSimulator.from_seed(
            GEOMETRY, LruPolicy(), 5, 4, stream.name
        ).run(stream)
        assert (seeded.sampled_accesses, seeded.sampled_hits,
                seeded.sampled_misses) == \
            (manual.sampled_accesses, manual.sampled_hits,
             manual.sampled_misses)

    def test_context_sampled_replay_reproduces(self, tiny_machine):
        from repro.sim.experiment import ExperimentContext

        results = [
            ExperimentContext(
                tiny_machine, target_accesses=8_000, seed=21,
                workloads=["water"],
            ).sampled_replay("water", "lru", sample_ratio=4)
            for _ in range(2)
        ]
        first, second = results
        assert (first.sampled_accesses, first.sampled_hits,
                first.sampled_misses) == \
            (second.sampled_accesses, second.sampled_hits,
             second.sampled_misses)
        assert first.sampled_accesses > 0


class TestSampledSubstream:
    """The extracted substream replayed on the shrunken geometry is the
    same computation as SampledLlcSimulator walking the full stream."""

    def test_sampled_geometry_shrinks_sets_only(self):
        small = sampled_geometry(GEOMETRY, 8)
        assert small.num_sets == GEOMETRY.num_sets // 8
        assert small.ways == GEOMETRY.ways
        assert small.block_bytes == GEOMETRY.block_bytes

    def test_sampled_geometry_ratio_must_divide_sets(self):
        with pytest.raises(ConfigError):
            sampled_geometry(GEOMETRY, 3)
        with pytest.raises(ConfigError):
            sampled_geometry(CacheGeometry(2 * 64, 1), 4)

    def test_substreams_partition_the_stream(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        total = sum(
            len(sampled_substream(stream, GEOMETRY, 4, offset))
            for offset in range(4)
        )
        assert total == len(stream)

    @pytest.mark.parametrize("offset", [0, 1, 3])
    def test_substream_replay_matches_reference(self, tiny_machine, offset):
        stream = workload_stream(tiny_machine)
        reference = SampledLlcSimulator(
            GEOMETRY, LruPolicy(), sample_ratio=4, offset=offset
        ).run(stream)
        sub = sampled_substream(stream, GEOMETRY, 4, offset)
        replay = LlcOnlySimulator(
            sampled_geometry(GEOMETRY, 4), LruPolicy()
        ).run(sub)
        assert len(sub) == reference.sampled_accesses
        assert replay.hits == reference.sampled_hits
        assert replay.misses == reference.sampled_misses

    def test_substream_name_records_the_slice(self, tiny_machine):
        stream = workload_stream(tiny_machine)
        sub = sampled_substream(stream, GEOMETRY, 4, 2)
        assert sub.name == f"{stream.name}#s4.2"
