"""Tests for the scenario-fuzzing harness (:mod:`repro.sim.fuzz`).

Four layers, mirroring the pipeline:

* config — validation, serialisation round-trip, corpus embedding;
* scenario sampling — pure functions of ``(seed, index)``, valid machines,
  and (via hypothesis) every draw in the generator space is runnable;
* sampled-fidelity execution — the per-cell record shape and the
  determinism claim (same cell twice -> bit-identical counts);
* inversion mining and full-fidelity replay — synthetic frontiers flag
  the right flips, and the differential law of satellite (b): every cell
  surfaced at sampled fidelity reproduces its hit/miss counts
  bit-identically at full fidelity through the tiered fast path, the
  ``--no-fastpath`` scalar model, and the reference sampled simulator.
"""

import json

import pytest
from hypothesis import given, settings

from repro.common.errors import ConfigError
from repro.sim.fuzz import (
    FuzzConfig,
    corpus_scenario,
    detect_inversions,
    load_corpus,
    replay_corpus_cell,
    replay_scenario_full,
    run_fuzz_campaign,
    run_fuzz_scenario,
    sample_scenario,
    scenario_machine,
    scenario_stream,
    scenario_trace,
)
from tests.strategies import fuzz_scenarios

SMALL = FuzzConfig(seed=7, scenarios=6, accesses=1200, max_full=2)
"""A campaign tiny enough to run inline in every test that needs one."""


class TestFuzzConfig:
    def test_defaults_are_valid(self):
        config = FuzzConfig()
        assert config.total_scenarios == config.scenarios == 100

    @pytest.mark.parametrize("kwargs", [
        {"scenarios": -1},
        {"sample_ratio": 0},
        {"policies": ("lru",)},
        {"mix_fraction": 1.5},
        {"mix_fraction": -0.1},
    ])
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            FuzzConfig(**kwargs)

    def test_dict_round_trip(self):
        config = FuzzConfig(
            seed=3, scenarios=10, policies=("lru", "ship"),
            trace_files=(("/tmp/a.bin", "champsim"),),
        )
        assert FuzzConfig.from_dict(config.as_dict()) == config

    def test_from_dict_ignores_unknown_fields(self):
        payload = FuzzConfig().as_dict()
        payload["corpus_only_extra"] = True
        assert FuzzConfig.from_dict(payload) == FuzzConfig()

    def test_trace_files_extend_scenario_range(self):
        config = FuzzConfig(
            scenarios=4, trace_files=(("t.bin", "champsim"),)
        )
        assert config.total_scenarios == 5


class TestScenarioSampling:
    def test_sampling_is_deterministic(self):
        for index in range(SMALL.total_scenarios):
            assert sample_scenario(SMALL, index) == \
                sample_scenario(SMALL, index)

    def test_out_of_range_index_raises(self):
        with pytest.raises(ConfigError):
            sample_scenario(SMALL, SMALL.total_scenarios)
        with pytest.raises(ConfigError):
            sample_scenario(SMALL, -1)

    def test_ids_encode_the_index(self):
        scenario = sample_scenario(SMALL, 3)
        assert scenario["id"] == "s00003"
        assert scenario["index"] == 3

    def test_trace_indices_map_onto_trace_files(self, tmp_path):
        config = FuzzConfig(
            scenarios=2, trace_files=((str(tmp_path / "x.bin"), "pin"),)
        )
        scenario = sample_scenario(config, 2)
        assert scenario["kind"] == "trace"
        assert scenario["trace_path"] == str(tmp_path / "x.bin")
        assert scenario["trace_format"] == "pin"

    def test_seed_changes_the_draw(self):
        a = [sample_scenario(FuzzConfig(seed=1, scenarios=8), i)
             for i in range(8)]
        b = [sample_scenario(FuzzConfig(seed=2, scenarios=8), i)
             for i in range(8)]
        assert a != b

    @settings(max_examples=20, deadline=None)
    @given(scenario=fuzz_scenarios(seed=5, scenarios=64))
    def test_every_draw_builds_a_valid_machine(self, scenario):
        machine = scenario_machine(scenario)
        assert machine.num_cores == scenario["cores"]
        assert machine.llc.num_sets == scenario["llc_sets"]
        assert machine.llc.ways == scenario["llc_ways"]
        # Inclusion floor the sampler must honour.
        assert machine.llc.size_bytes >= \
            machine.num_cores * machine.l2.size_bytes
        assert scenario["kind"] in ("mix", "kernelmix")

    @settings(max_examples=5, deadline=None)
    @given(scenario=fuzz_scenarios(seed=5, scenarios=64))
    def test_every_draw_generates_a_trace(self, scenario):
        config = FuzzConfig(seed=5, scenarios=64, accesses=400)
        trace = scenario_trace(config, scenario)
        assert len(trace) > 0
        assert trace.num_threads <= scenario["cores"]


class TestRunFuzzScenario:
    def test_record_shape(self):
        record = run_fuzz_scenario(SMALL, sample_scenario(SMALL, 0))
        assert record["sample_ratio"] == SMALL.sample_ratio
        assert 0 <= record["sample_offset"] < SMALL.sample_ratio
        assert record["sampled_accesses"] <= record["llc_accesses"]
        assert set(record["policies"]) == set(SMALL.policies)
        for cell in record["policies"].values():
            assert cell["hits"] + cell["misses"] == cell["accesses"]
        assert 0.0 <= record["oracle_gain"] <= 1.0

    def test_cell_is_reproducible_bit_identically(self):
        scenario = sample_scenario(SMALL, 1)
        first = run_fuzz_scenario(SMALL, scenario)
        second = run_fuzz_scenario(SMALL, scenario)
        assert first == second

    def test_stream_and_offset_are_seed_derived(self):
        scenario = sample_scenario(SMALL, 2)
        stream_a, _ = scenario_stream(SMALL, scenario)
        stream_b, _ = scenario_stream(SMALL, scenario)
        assert list(stream_a.blocks) == list(stream_b.blocks)


class TestDetectInversions:
    @staticmethod
    def _record(ratios, gain=0.0):
        return {
            "id": "x",
            "policies": {
                policy: {"miss_ratio": ratio, "accesses": 100,
                         "hits": 50, "misses": 50}
                for policy, ratio in ratios.items()
            },
            "oracle_gain": gain,
        }

    def test_frontier_orders_by_mean(self):
        config = FuzzConfig(policies=("lru", "ship"), flip_margin=0.02)
        records = [
            self._record({"lru": 0.5, "ship": 0.3}),
            self._record({"lru": 0.4, "ship": 0.2}),
        ]
        frontier, means = detect_inversions(config, records)
        assert frontier == ["ship", "lru"]
        assert means["lru"] == pytest.approx(0.45)
        assert not any(r["interesting"] for r in records)

    def test_flip_against_the_frontier_is_flagged(self):
        config = FuzzConfig(policies=("lru", "ship"), flip_margin=0.02)
        records = [
            self._record({"lru": 0.2, "ship": 0.5}),  # inverted cell
            self._record({"lru": 0.5, "ship": 0.1}),
            self._record({"lru": 0.5, "ship": 0.1}),
        ]
        frontier, _ = detect_inversions(config, records)
        assert frontier == ["ship", "lru"]
        assert records[0]["interesting"]
        flip = records[0]["flips"][0]
        assert flip["expected_better"] == "ship"
        assert flip["expected_worse"] == "lru"
        assert flip["delta"] == pytest.approx(0.3)
        assert not records[1]["flips"]

    def test_sub_margin_flips_are_ignored(self):
        config = FuzzConfig(policies=("lru", "ship"), flip_margin=0.1)
        records = [
            self._record({"lru": 0.31, "ship": 0.30}),
            self._record({"lru": 0.30, "ship": 0.31}),
        ]
        detect_inversions(config, records)
        assert not any(r["flips"] for r in records)

    def test_oracle_spike_is_interesting_on_its_own(self):
        config = FuzzConfig(policies=("lru", "ship"), spike_threshold=0.08)
        records = [self._record({"lru": 0.4, "ship": 0.3}, gain=0.12)]
        detect_inversions(config, records)
        assert records[0]["oracle_spike"]
        assert records[0]["interesting"]

    def test_empty_records_return_config_order(self):
        config = FuzzConfig(policies=("srrip", "lru"))
        frontier, means = detect_inversions(config, [])
        assert frontier == ["srrip", "lru"]
        assert means == {}


class TestFullFidelityDifferential:
    """Satellite (b): sampled cells reproduce bit-identically at full
    fidelity through both the tiered fast path and the scalar model."""

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_sampled_counts_survive_full_replay(self, index):
        scenario = sample_scenario(SMALL, index)
        campaign = run_fuzz_scenario(SMALL, scenario)
        full = replay_scenario_full(
            SMALL, scenario, campaign_policies=campaign["policies"],
            probes=(),
        )
        assert full["sampled_match"], "campaign counts not reproduced"
        assert full["sampled_reference_match"], \
            "substream replay != reference SampledLlcSimulator"
        assert full["fastpath_match"], "tiered replay != scalar model"
        for policy in SMALL.policies:
            assert full["sampled"][policy]["reference_match"]
            assert full["full"][policy]["fastpath_match"]
            assert full["full"][policy]["scalar_tier"] == "scalar"

    def test_probe_evidence_attaches(self):
        scenario = sample_scenario(SMALL, 0)
        full = replay_scenario_full(SMALL, scenario, probes=("sharing",))
        assert "probe_report" in full
        assert full["oracle_gain_full"] >= 0.0

    def test_stale_campaign_counts_are_caught(self):
        scenario = sample_scenario(SMALL, 0)
        campaign = run_fuzz_scenario(SMALL, scenario)
        doctored = json.loads(json.dumps(campaign["policies"]))
        doctored["lru"]["hits"] += 1
        full = replay_scenario_full(
            SMALL, scenario, campaign_policies=doctored, probes=(),
        )
        assert not full["sampled_match"]
        assert not full["sampled"]["lru"]["campaign_match"]


class TestCampaign:
    @pytest.fixture(scope="class")
    def corpus(self):
        return run_fuzz_campaign(SMALL)

    def test_corpus_shape(self, corpus):
        assert corpus["format_version"] == 1
        assert corpus["config"] == SMALL.as_dict()
        assert len(corpus["scenarios"]) == SMALL.total_scenarios
        assert sorted(corpus["frontier"]) == sorted(SMALL.policies)
        assert not corpus["failures"]
        assert not corpus["mismatches"]

    def test_corpus_is_json_serialisable(self, corpus):
        round_tripped = json.loads(json.dumps(corpus, sort_keys=True))
        assert round_tripped["interesting"] == corpus["interesting"]

    def test_full_rerun_honours_max_full(self, corpus):
        assert len(corpus["full"]) <= SMALL.max_full
        assert corpus["full_truncated"] == \
            len(corpus["interesting"]) - len(corpus["full"])
        for record in corpus["full"].values():
            assert record["sampled_match"]
            assert record["sampled_reference_match"]
            assert record["fastpath_match"]

    def test_campaign_is_deterministic(self, corpus):
        # Everything except wall-clock profile timings inside probe
        # reports must be bit-identical run to run.
        def scrub(node):
            if isinstance(node, dict):
                return {k: scrub(v) for k, v in node.items()
                        if k != "profile"}
            if isinstance(node, list):
                return [scrub(item) for item in node]
            return node

        again = run_fuzz_campaign(SMALL)
        assert json.dumps(scrub(again), sort_keys=True) == \
            json.dumps(scrub(corpus), sort_keys=True)

    def test_replay_corpus_cell_reproduces(self, corpus):
        target = (corpus["interesting"] or
                  [corpus["scenarios"][0]["id"]])[0]
        replayed = replay_corpus_cell(corpus, target, probes=())
        assert replayed["sampled_match"]
        assert replayed["sampled_reference_match"]
        assert replayed["fastpath_match"]

    def test_replay_unknown_cell_raises(self, corpus):
        with pytest.raises(ConfigError):
            corpus_scenario(corpus, "s99999")
        with pytest.raises(ConfigError):
            replay_corpus_cell(corpus, "s99999")

    def test_replay_rejects_doctored_scenarios(self, corpus):
        doctored = json.loads(json.dumps(corpus))
        doctored["scenarios"][0]["cores"] = 99
        with pytest.raises(ConfigError, match="re-sampled differently"):
            replay_corpus_cell(doctored, doctored["scenarios"][0]["id"])

    def test_load_corpus_checks_the_format(self, corpus, tmp_path):
        path = tmp_path / "inversions.json"
        path.write_text(json.dumps(corpus), encoding="utf-8")
        assert load_corpus(path)["config"] == SMALL.as_dict()
        path.write_text(json.dumps({"format_version": 99}),
                        encoding="utf-8")
        with pytest.raises(ConfigError, match="corpus format"):
            load_corpus(path)


class TestTraceScenarios:
    def test_ingested_trace_runs_through_the_pipeline(self, tmp_path):
        lines = [f"{0x400 + i % 3 * 4:#x}: {'W' if i % 5 == 0 else 'R'} "
                 f"{(i * 64) % 4096:#x}" for i in range(600)]
        path = tmp_path / "fuzz.pin.out"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        config = FuzzConfig(
            seed=7, scenarios=0, accesses=600,
            trace_files=((str(path), "pin"),),
        )
        corpus = run_fuzz_campaign(config)
        assert len(corpus["scenarios"]) == 1
        record = corpus["scenarios"][0]
        assert record["kind"] == "trace"
        assert record["llc_accesses"] > 0
        assert not corpus["failures"]
