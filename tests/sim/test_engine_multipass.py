"""Tests for the replay engine and multipass helpers."""

import pytest

from repro.cache.llc import ResidencyObserver
from repro.common.config import CacheGeometry
from repro.sim.engine import LlcOnlySimulator
from repro.sim.multipass import record_llc_stream, run_opt, run_policy_on_stream
from repro.sim.results import LlcSimResult, PolicyComparison
from repro.policies.lru import LruPolicy
from repro.workloads.registry import get_workload
from tests.conftest import make_stream, read_stream

GEOMETRY = CacheGeometry(4 * 4 * 64, 4)


class TestLlcOnlySimulator:
    def test_result_counts(self):
        stream = read_stream([0, 1, 0, 1, 2])
        result = LlcOnlySimulator(GEOMETRY, LruPolicy()).run(stream)
        assert result.accesses == 5
        assert result.hits == 2
        assert result.misses == 3
        assert result.policy == "lru"
        assert result.stream_name == stream.name

    def test_flush_notifies_observers(self):
        flushed = []

        class Flush(ResidencyObserver):
            def residency_ended(self, *args):
                flushed.append(args[-1])  # forced flag

        LlcOnlySimulator(GEOMETRY, LruPolicy(), observers=(Flush(),)).run(
            read_stream([0, 1])
        )
        assert flushed == [True, True]


class TestResults:
    def test_ratios(self):
        result = LlcSimResult("lru", "s", accesses=10, hits=4, misses=6)
        assert result.miss_ratio == 0.6
        assert result.hit_ratio == 0.4

    def test_miss_reduction(self):
        base = LlcSimResult("lru", "s", 10, 4, 6)
        better = LlcSimResult("x", "s", 10, 7, 3)
        assert better.miss_reduction_vs(base) == 0.5
        assert base.miss_reduction_vs(better) == pytest.approx(-1.0)

    def test_comparison_helpers(self):
        base = LlcSimResult("lru", "s", 10, 4, 6)
        better = LlcSimResult("srrip", "s", 10, 7, 3)
        comparison = PolicyComparison("s", {"lru": base, "srrip": better})
        assert comparison.miss_reduction("srrip") == 0.5
        assert comparison.policies() == ["lru", "srrip"]


class TestMultipass:
    def stream_and_stats(self, tiny_machine):
        trace = get_workload("dedup").generate(
            num_threads=2, scale=1024, target_accesses=5_000, seed=3
        )
        return record_llc_stream(trace, tiny_machine)

    def test_replaying_recording_policy_reproduces_counts(self, tiny_machine):
        """Replaying the recorded stream under the same (LRU) policy and
        geometry must reproduce the online LLC hit/miss counts exactly —
        the core stream-invariance property of the methodology."""
        stream, stats = self.stream_and_stats(tiny_machine)
        replay = run_policy_on_stream(stream, tiny_machine.llc, "lru")
        assert replay.misses == stats.llc_misses
        assert replay.hits == stats.llc_hits

    def test_stream_name_mentions_workload_and_machine(self, tiny_machine):
        stream, __ = self.stream_and_stats(tiny_machine)
        assert "dedup" in stream.name
        assert "tiny" in stream.name

    def test_opt_never_worse_than_realistic_policies(self, tiny_machine):
        stream, __ = self.stream_and_stats(tiny_machine)
        opt = run_opt(stream, tiny_machine.llc)
        for policy in ("lru", "dip", "srrip", "drrip", "ship", "nru"):
            other = run_policy_on_stream(stream, tiny_machine.llc, policy)
            assert opt.misses <= other.misses

    def test_policy_instance_accepted(self, tiny_machine):
        stream, __ = self.stream_and_stats(tiny_machine)
        result = run_policy_on_stream(stream, tiny_machine.llc, LruPolicy())
        assert result.policy == "lru"
