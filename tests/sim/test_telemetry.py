"""Run-telemetry layer: manifests, event logs, inspection, CLI wiring.

The last test class is the issue's acceptance scenario: a sweep whose
worker is forced to crash mid-run must still complete with partial
results, record the failed cell in the run manifest, and exit nonzero
only under ``--fail-fast``; ``--no-telemetry`` must leave stdout
byte-identical and write nothing.
"""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.sim import telemetry
from repro.sim.experiment import ExperimentContext
from repro.sim.parallel import FAULT_ENV


@pytest.fixture
def run(tmp_path):
    return telemetry.create_run(tmp_path, command="test", argv=["--x"])


class TestRunLifecycle:
    def test_create_run_writes_seed_manifest(self, tmp_path, run):
        assert run.run_dir.parent == tmp_path
        manifest = json.loads(
            (run.run_dir / telemetry.MANIFEST_NAME).read_text()
        )
        assert manifest["format_version"] == telemetry.TELEMETRY_FORMAT_VERSION
        assert manifest["run_id"] == run.run_id
        assert manifest["command"] == "test"
        assert manifest["argv"] == ["--x"]
        assert manifest["status"] == "running"
        events = telemetry.read_events(run.run_dir)
        assert events[0]["kind"] == "run_started"
        assert events[0]["role"] == "main"

    def test_same_second_runs_get_distinct_dirs(self, tmp_path):
        first = telemetry.create_run(tmp_path)
        second = telemetry.create_run(tmp_path)
        assert first.run_dir != second.run_dir
        assert first.run_dir.is_dir() and second.run_dir.is_dir()

    def test_update_manifest_merges_and_leaves_no_tmp(self, run):
        run.update_manifest(machine="tiny")
        run.update_manifest(seed=7)
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["machine"] == "tiny"
        assert manifest["seed"] == 7
        leftovers = [p for p in run.run_dir.iterdir()
                     if p.name.startswith("tmp")]
        assert leftovers == []

    def test_finish_seals_status_and_wall_time(self, run):
        run.finish(status="completed")
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["status"] == "completed"
        assert manifest["wall_sec"] >= 0
        assert manifest["finished"].endswith("Z")
        assert telemetry.read_events(run.run_dir)[-1]["kind"] == "run_finished"

    def test_worker_cannot_touch_manifest_but_shares_events(self, run):
        worker = telemetry.attach_worker(run.run_dir)
        worker.update_manifest(hijacked=True)
        assert "hijacked" not in json.loads(run.manifest_path.read_text())
        worker.event("span", stage="replay", wall_sec=0.5)
        roles = {e["role"] for e in telemetry.read_events(run.run_dir)}
        assert roles == {"main", "worker"}

    def test_event_survives_deleted_run_dir(self, run, tmp_path):
        import shutil

        shutil.rmtree(run.run_dir)
        run.event("orphan")  # must not raise
        run.update_manifest(orphan=True)  # must not raise


class TestManifestHardening:
    def test_failed_replace_leaves_no_tmp(self, run, monkeypatch):
        # A write that dies between tmp-write and publish (disk full,
        # permission flip) must neither raise nor leak the temp file.
        before = json.loads(run.manifest_path.read_text())

        def broken_replace(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(telemetry.os, "replace", broken_replace)
        run.update_manifest(machine="tiny")  # must not raise
        monkeypatch.undo()
        leftovers = [p for p in run.run_dir.iterdir()
                     if p.name.startswith("tmp")]
        assert leftovers == []
        # The published manifest is the last good one, not a torn write.
        assert json.loads(run.manifest_path.read_text()) == before

    def test_failed_fsync_leaves_no_tmp(self, run, monkeypatch):
        def broken_fsync(fd):
            raise OSError("simulated fsync failure")

        monkeypatch.setattr(telemetry.os, "fsync", broken_fsync)
        run.update_manifest(seed=7)  # must not raise
        monkeypatch.undo()
        leftovers = [p for p in run.run_dir.iterdir()
                     if p.name.startswith("tmp")]
        assert leftovers == []

    def test_orphan_sweep_removes_stale_spares_fresh(self, tmp_path, run):
        import os as _os

        stale = run.run_dir / f"tmp99999-{telemetry.MANIFEST_NAME}"
        stale.write_text("{}")
        _os.utime(stale, (1, 1))  # ancient
        fresh = run.run_dir / f"tmp88888-{telemetry.MANIFEST_NAME}"
        fresh.write_text("{}")  # mtime now: a live writer's in-flight tmp
        unrelated = run.run_dir / "tmpnotapid-manifest.json"
        unrelated.write_text("{}")
        _os.utime(unrelated, (1, 1))

        assert telemetry.orphan_manifest_tmps(tmp_path) == [stale]
        removed = telemetry.sweep_orphan_manifests(tmp_path)
        assert removed == [stale]
        assert not stale.exists()
        assert fresh.exists()      # grace period protects live writers
        assert unrelated.exists()  # only the tmp{pid}- pattern is swept
        # The real manifest is untouched.
        assert run.manifest_path.exists()

    def test_sweep_missing_root_is_empty(self, tmp_path):
        assert telemetry.sweep_orphan_manifests(tmp_path / "nope") == []

    def test_runs_list_sweeps_orphans(self, capsys, tmp_path):
        import os as _os

        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        run_dir = runs_under(cache)[0].path
        stale = run_dir / f"tmp77777-{telemetry.MANIFEST_NAME}"
        stale.write_text("{}")
        _os.utime(stale, (1, 1))
        assert main(["runs", "list", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert not stale.exists()
        assert "swept 1 orphaned manifest temp" in captured.err
        # A clean second listing stays quiet.
        assert main(["runs", "list", "--cache-dir", cache]) == 0
        assert "swept" not in capsys.readouterr().err


class TestSpansAndCurrent:
    def test_span_records_wall_time_and_extras(self, run):
        with run.span("trace_gen", workload="water") as extras:
            extras["accesses"] = 123
        event = telemetry.read_events(run.run_dir)[-1]
        assert event["kind"] == "span"
        assert event["stage"] == "trace_gen"
        assert event["workload"] == "water"
        assert event["accesses"] == 123
        assert event["wall_sec"] >= 0

    def test_span_on_error_records_and_reraises(self, run):
        with pytest.raises(ValueError):
            with run.span("replay"):
                raise ValueError("boom")
        event = telemetry.read_events(run.run_dir)[-1]
        assert event["stage"] == "replay"
        assert event["error"] == "ValueError"

    def test_module_helpers_are_noops_when_disabled(self):
        assert telemetry.current() is None
        telemetry.emit("ignored", x=1)  # must not raise
        with telemetry.span("ignored") as extras:
            extras["y"] = 2  # throwaway dict

    def test_activate_scopes_the_current_run(self, run):
        assert telemetry.current() is None
        with telemetry.activate(run):
            assert telemetry.current() is run
            telemetry.emit("scoped", ok=True)
        assert telemetry.current() is None
        kinds = [e["kind"] for e in telemetry.read_events(run.run_dir)]
        assert "scoped" in kinds

    def test_describe_environment_reports_context(self, tiny_machine):
        context = ExperimentContext(
            tiny_machine, target_accesses=2000, seed=3,
            workloads=["water"],
        )
        fields = telemetry.describe_environment(context)
        assert fields["machine"] == "tiny"
        assert fields["seed"] == 3
        assert fields["target_accesses"] == 2000
        assert fields["workloads"] == ["water"]
        assert isinstance(fields["fastpath"], bool)
        assert "repro_version" in fields
        assert "numpy_available" in fields


class TestInspection:
    def test_list_runs_oldest_first_and_corrupt_tolerated(self, tmp_path):
        first = telemetry.create_run(tmp_path, command="a")
        second = telemetry.create_run(tmp_path, command="b")
        (second.run_dir / telemetry.MANIFEST_NAME).write_text("{not json")
        (tmp_path / "not-a-run").mkdir()  # no manifest: skipped
        runs = telemetry.list_runs(tmp_path)
        assert [r.run_id for r in runs] == [first.run_id, second.run_id]
        assert runs[0].manifest["command"] == "a"
        assert runs[1].status == "corrupt"

    def test_list_runs_missing_root_is_empty(self, tmp_path):
        assert telemetry.list_runs(tmp_path / "nowhere") == []

    def test_load_run_accepts_unique_prefix(self, tmp_path, run):
        info = telemetry.load_run(run.run_id, tmp_path)
        assert info.run_id == run.run_id
        info = telemetry.load_run(run.run_id[:-2], tmp_path)
        assert info.run_id == run.run_id
        with pytest.raises(ConfigError):
            telemetry.load_run("zzz-no-such-run", tmp_path)

    def test_load_run_ambiguous_prefix_rejected(self, tmp_path):
        telemetry.create_run(tmp_path)
        telemetry.create_run(tmp_path)
        with pytest.raises(ConfigError):
            telemetry.load_run("2", tmp_path)  # both ids share the prefix

    def test_read_events_skips_torn_lines(self, run):
        run.event("good", n=1)
        with open(run.events_path, "a") as handle:
            handle.write('{"kind": "torn", "n\n')  # killed mid-write
        run.event("after", n=2)
        kinds = [e["kind"] for e in telemetry.read_events(run.run_dir)]
        assert "torn" not in kinds
        assert kinds[-2:] == ["good", "after"]

    def test_summarize_spans_aggregates_per_stage(self):
        events = [
            {"kind": "span", "stage": "replay", "wall_sec": 1.0},
            {"kind": "span", "stage": "replay", "wall_sec": 3.0},
            {"kind": "span", "stage": "trace_gen", "wall_sec": 0.5},
            {"kind": "cell_retry"},
        ]
        stages = telemetry.summarize_spans(events)
        assert stages["replay"].as_dict() == {
            "count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0,
        }
        assert stages["trace_gen"].count == 1

    def test_resolve_runs_root_precedence(self, tmp_path, monkeypatch):
        explicit = telemetry.resolve_runs_root(
            tmp_path / "explicit", cache_dir=tmp_path / "cache"
        )
        assert explicit == tmp_path / "explicit"
        from_cache = telemetry.resolve_runs_root(cache_dir=tmp_path / "cache")
        assert from_cache == tmp_path / "cache" / telemetry.RUNS_DIRNAME
        monkeypatch.setenv(telemetry.RUNS_DIR_ENV, str(tmp_path / "env"))
        assert telemetry.resolve_runs_root() == tmp_path / "env"


FAST = ["--accesses", "3000", "--workloads", "swaptions", "water"]


def runs_under(cache_dir):
    """Runs recorded beneath a CLI ``--cache-dir``."""
    return telemetry.list_runs(telemetry.resolve_runs_root(cache_dir=cache_dir))


class TestCliTelemetry:
    def test_compare_records_a_run(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        err = capsys.readouterr().err
        assert "telemetry: run" in err
        runs = runs_under(cache)
        assert len(runs) == 1
        manifest = runs[0].manifest
        assert manifest["status"] == "completed"
        assert manifest["command"] == "compare"
        assert manifest["workloads"] == ["swaptions", "water"]
        assert manifest["cells"] == {"total": 2, "completed": 2, "failed": 0}
        stages = telemetry.summarize_spans(telemetry.read_events(runs[0].path))
        assert "replay" in stages
        assert "trace_gen" in stages
        assert "hierarchy_record" in stages

    def test_runs_list_and_show(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "Telemetry runs" in out
        assert "compare" in out
        run_id = runs_under(cache)[0].run_id
        assert main(["runs", "show", run_id[:10], "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out
        assert "Stage spans" in out
        assert "replay" in out

    def test_runs_show_without_id_is_an_error(self, capsys):
        assert main(["runs", "show"]) == 2
        assert "needs a run id" in capsys.readouterr().err

    def test_no_telemetry_is_byte_identical_and_writes_nothing(
        self, capsys, tmp_path
    ):
        with_cache = str(tmp_path / "with")
        without_cache = str(tmp_path / "without")
        args = ["compare", *FAST, "--policies", "lru", "srrip"]
        assert main([*args, "--cache-dir", with_cache]) == 0
        with_telemetry = capsys.readouterr().out
        assert main([*args, "--no-telemetry",
                     "--cache-dir", without_cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == with_telemetry
        assert "telemetry" not in captured.err
        assert runs_under(without_cache) == []
        assert not (tmp_path / "without" / telemetry.RUNS_DIRNAME).exists()

    def test_failed_run_is_sealed_as_failed(self, capsys, tmp_path,
                                            monkeypatch):
        cache = str(tmp_path / "cache")
        monkeypatch.setenv(FAULT_ENV, "compare:water:raise")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache, "--fail-fast",
                     "--retries", "0"]) == 2
        assert "error:" in capsys.readouterr().err
        runs = runs_under(cache)
        assert runs[0].status == "failed"
        assert "injected fault" in runs[0].manifest["error"]


class TestCrashAcceptance:
    """A sweep with one worker forced to crash completes with partial
    results, records the failure in the manifest, and exits nonzero only
    under ``--fail-fast``."""

    def test_graceful_sweep_survives_worker_crash(self, capsys, tmp_path,
                                                  monkeypatch):
        cache = str(tmp_path / "cache")
        monkeypatch.setenv(FAULT_ENV, "sweep_grid:water:exit")
        assert main(["sweep", *FAST, "--jobs", "2", "--retries", "1",
                     "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "avg_oracle_red" in captured.out  # partial table rendered
        assert "warning: cell (sweep_grid, water)" in captured.err
        runs = runs_under(cache)
        manifest = runs[0].manifest
        assert manifest["status"] == "completed_with_failures"
        assert manifest["cells"]["failed"] >= 1
        assert manifest["cells"]["completed"] >= 1
        failed = {f["workload"] for f in manifest["failures"]}
        assert "water" in failed

    def test_fail_fast_sweep_exits_nonzero(self, capsys, tmp_path,
                                           monkeypatch):
        cache = str(tmp_path / "cache")
        monkeypatch.setenv(FAULT_ENV, "sweep_grid:water:exit")
        assert main(["sweep", *FAST, "--jobs", "2", "--fail-fast",
                     "--cache-dir", cache]) == 2
        assert "worker process died" in capsys.readouterr().err
        runs = runs_under(cache)
        assert runs[0].status == "failed"


class TestCorruptionHardening:
    """Satellite: every reader degrades to a warning, never a traceback."""

    def test_list_runs_reports_invalid_json(self, tmp_path):
        run = telemetry.create_run(tmp_path, command="a")
        (run.run_dir / telemetry.MANIFEST_NAME).write_text("{not json")
        errors = []
        runs = telemetry.list_runs(
            tmp_path, on_error=lambda path, detail: errors.append(detail)
        )
        assert runs[0].status == "corrupt"
        assert errors and "not valid JSON" in errors[0]

    def test_list_runs_reports_non_object_manifest(self, tmp_path):
        run = telemetry.create_run(tmp_path, command="a")
        (run.run_dir / telemetry.MANIFEST_NAME).write_text('[1, 2, 3]')
        errors = []
        runs = telemetry.list_runs(
            tmp_path, on_error=lambda path, detail: errors.append(detail)
        )
        assert runs[0].status == "corrupt"
        assert errors and "not a JSON object" in errors[0]

    def test_read_events_counts_skipped_lines(self, run):
        run.event("good")
        with open(run.events_path, "a") as handle:
            handle.write('"a bare string"\n')   # valid JSON, wrong shape
            handle.write('{"kind": "torn\n')    # killed mid-write
        run.event("after")
        reported = []
        events = telemetry.read_events(
            run.run_dir, on_error=lambda path, count: reported.append(count)
        )
        assert [e["kind"] for e in events][-2:] == ["good", "after"]
        assert reported == [2]

    def test_summarize_spans_tolerates_malformed_events(self):
        events = [
            {"kind": "span", "stage": "replay", "wall_sec": 1.0},
            {"kind": "span", "stage": "replay", "wall_sec": "garbage"},
            {"kind": "span", "stage": "replay"},  # missing wall_sec -> 0
            {"kind": "span", "stage": 7, "wall_sec": 1.0},
            "not an event at all",
        ]
        stages = telemetry.summarize_spans(events)
        assert stages["replay"].count == 2
        assert stages["replay"].total == 1.0
        assert stages["7"].count == 1

    def test_runs_list_warns_but_succeeds_on_corrupt_manifest(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        run = runs_under(cache)[0]
        (run.path / telemetry.MANIFEST_NAME).write_text("{half a manif")
        assert main(["runs", "list", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "Traceback" not in captured.err
        assert "corrupt" in captured.out

    def test_runs_show_warns_but_succeeds_on_corrupt_events(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        run = runs_under(cache)[0]
        with open(run.path / telemetry.EVENTS_NAME, "a") as handle:
            handle.write("][ not json\n")
        assert main(["runs", "show", run.run_id, "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "skipped 1 malformed" in captured.err
        assert "Stage spans" in captured.out

    def test_runs_show_survives_manifest_of_wrong_shapes(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        run = runs_under(cache)[0]
        manifest = json.loads(
            (run.path / telemetry.MANIFEST_NAME).read_text()
        )
        manifest["cells"] = "everything is strings now"
        manifest["workloads"] = {"wrong": "shape"}
        manifest["failures"] = ["not a dict", {"kind": "x", "workload": "y",
                                               "error_type": "E",
                                               "error": "boom"}]
        (run.path / telemetry.MANIFEST_NAME).write_text(
            json.dumps(manifest)
        )
        assert main(["runs", "show", run.run_id, "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "manifest" in captured.out


class TestSchemaVersioning:
    """Satellite contracts: versioned events, monotonic durations."""

    def test_events_carry_schema_version(self, run):
        run.event("probe")
        event = telemetry.read_events(run.run_dir)[-1]
        assert event["schema_version"] == telemetry.EVENT_SCHEMA_VERSION

    def test_manifest_carries_event_schema_version(self, run):
        assert run.manifest["event_schema_version"] == \
            telemetry.EVENT_SCHEMA_VERSION

    def test_finish_records_monotonic_duration(self, run):
        run.finish(status="completed")
        manifest = json.loads(
            (run.run_dir / telemetry.MANIFEST_NAME).read_text()
        )
        assert manifest["duration_s"] >= 0.0
        finished = telemetry.read_events(run.run_dir)[-1]
        assert finished["duration_s"] == manifest["duration_s"]

    def test_spans_record_duration_s(self, run):
        with telemetry.activate(run):
            with telemetry.span("stage_x"):
                pass
        event = telemetry.read_events(run.run_dir)[-1]
        assert event["duration_s"] == event["wall_sec"]

    def test_future_event_version_warns_not_crashes(self, run):
        run.event("probe")
        with open(run.run_dir / telemetry.EVENTS_NAME, "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"t": 1.0, "kind": "from_the_future",
                 "schema_version": telemetry.EVENT_SCHEMA_VERSION + 7}
            ) + "\n")
        futures = []
        events = telemetry.read_events(
            run.run_dir,
            on_future=lambda path, version: futures.append(version),
        )
        # Future events are still returned: known fields keep meaning.
        assert events[-1]["kind"] == "from_the_future"
        assert futures == [telemetry.EVENT_SCHEMA_VERSION + 7]

    def test_future_manifest_version_warns_in_list(self, tmp_path):
        run = telemetry.create_run(tmp_path, command="a")
        manifest = json.loads(
            (run.run_dir / telemetry.MANIFEST_NAME).read_text()
        )
        manifest["format_version"] = telemetry.TELEMETRY_FORMAT_VERSION + 3
        (run.run_dir / telemetry.MANIFEST_NAME).write_text(
            json.dumps(manifest)
        )
        warnings = []
        runs = telemetry.list_runs(
            tmp_path,
            on_error=lambda path, detail: warnings.append(detail),
        )
        assert len(runs) == 1  # still listed, best-effort
        assert any("newer" in w for w in warnings)

    def test_read_events_tolerates_non_utf8_garbage(self, run):
        run.event("probe")
        with open(run.run_dir / telemetry.EVENTS_NAME, "ab") as handle:
            handle.write(b"\x80\xff garbage\n")
        errors = []
        events = telemetry.read_events(
            run.run_dir,
            on_error=lambda path, count: errors.append(count),
        )
        assert [e["kind"] for e in events] == ["run_started", "probe"]
        assert errors == [1]


class TestQuickEventSummary:
    def test_missing_log_is_zero(self, tmp_path):
        summary = telemetry.quick_event_summary(tmp_path)
        assert summary == {"events": 0, "approx": False,
                           "last_kind": None, "last_t": None}

    def test_small_log_counts_exactly(self, run):
        for index in range(5):
            run.event("probe", index=index)
        run.event("run_finished")
        summary = telemetry.quick_event_summary(run.run_dir)
        assert summary["events"] == 7  # run_started + 5 probes + finish
        assert summary["approx"] is False
        assert summary["last_kind"] == "run_finished"
        assert isinstance(summary["last_t"], float)

    def test_large_log_is_capped_and_extrapolated(self, run):
        line = json.dumps({"t": 1.0, "kind": "probe",
                           "pad": "x" * 100}) + "\n"
        with open(run.run_dir / telemetry.EVENTS_NAME, "w",
                  encoding="utf-8") as handle:
            for _ in range(500):
                handle.write(line)
        summary = telemetry.quick_event_summary(
            run.run_dir, exact_bytes=4096, tail_bytes=1024
        )
        assert summary["approx"] is True
        assert summary["last_kind"] == "probe"
        # Uniform lines: the tail extrapolation lands near the true count.
        assert abs(summary["events"] - 500) <= 75

    def test_torn_final_line_still_counted(self, run):
        run.event("probe")
        with open(run.run_dir / telemetry.EVENTS_NAME, "a",
                  encoding="utf-8") as handle:
            handle.write('{"kind": "torn')
        summary = telemetry.quick_event_summary(run.run_dir)
        assert summary["events"] == 3  # run_started + probe + torn
        assert summary["last_kind"] == "probe"  # last *complete* line
