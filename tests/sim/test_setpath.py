"""Unit and equivalence tests for the set-partitioned replay engine.

The big differential matrix (every policy, real streams, numpy twins,
PSEL reconstruction) lives in ``tests/test_differential.py``; this file
pins the engine's own contracts:

* tier resolution — double eligibility (declared tier *and* an
  exact-type kernel), bound-instance demotion, undeclared subclasses;
* the stream partition — a stable per-set grouping of positions;
* observer exactness — the assembled walk replays the scalar model's
  callback sequence verbatim, argument for argument, for every kernel
  family (and under hypothesis-driven adversarial streams);
* the walk's degenerate-distance contract;
* dispatch — :func:`try_fast_replay` takes eligible tiers, declines
  scalar-tier policies, and honours the gate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.llc import ResidencyObserver
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.policies.base import ReplacementPolicy
from repro.policies.lru import LruPolicy
from repro.policies.opt import BeladyOptPolicy, compute_next_use
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.policies.rrip import SrripPolicy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.fastpath import FASTPATH_ENV
from repro.sim.setpath import (
    partition_stream,
    reconstruct_setpath_replay,
    replay_setpath,
    replay_tier_table,
    setpath_tier_of,
    try_fast_replay,
)
from tests.conftest import make_stream
from tests.strategies import replay_stream_lists

SETPATH_POLICIES = (
    "lip", "bip", "dip", "srrip", "brrip", "drrip", "nru", "random",
)

GEOMETRIES = [
    CacheGeometry(2 * 1 * 64, 1),    # 2 sets x 1 way (degenerate)
    CacheGeometry(4 * 2 * 64, 2),    # 4 sets x 2 ways
    CacheGeometry(2 * 4 * 64, 4),    # 2 sets x 4 ways
    CacheGeometry(8 * 8 * 64, 8),    # 8 sets x 8 ways
]


class RecordingObserver(ResidencyObserver):
    """Logs every callback verbatim for sequence comparison."""

    def __init__(self):
        self.events = []

    def residency_started(self, block, set_index, fill_ordinal, pc, core):
        self.events.append(("started", block, set_index, fill_ordinal, pc, core))

    def residency_ended(self, block, set_index, fill_ordinal, end_ordinal,
                        fill_pc, fill_core, core_mask, write_mask, hits,
                        other_hits, forced):
        self.events.append((
            "ended", block, set_index, fill_ordinal, end_ordinal, fill_pc,
            fill_core, core_mask, write_mask, hits, other_hits, forced,
        ))


def mixed_stream(n=4000, spread=160):
    """A deterministic multi-core read/write stream with reuse."""
    accesses = []
    for i in range(n):
        block = (i * 7 + (i // 13) * 3) % spread
        accesses.append((i % 4, 0x100 + (i % 3) * 0x10, block, i % 5 == 0))
    return make_stream(accesses)


accesses_strategy = replay_stream_lists()


class TestTierResolution:
    def test_table_covers_every_registered_policy(self):
        table = replay_tier_table()
        for name in POLICY_NAMES:
            assert name in table
        assert all(
            tier in ("stack", "set", "dueling", "scalar")
            for tier in table.values()
        )

    def test_name_class_and_instance_agree(self):
        assert setpath_tier_of("srrip") == "set"
        assert setpath_tier_of(SrripPolicy) == "set"
        assert setpath_tier_of(SrripPolicy()) == "set"
        assert setpath_tier_of("lru") == "stack"
        assert setpath_tier_of("ship") == "scalar"
        assert setpath_tier_of("nope") == "scalar"

    def test_bound_instance_demotes_to_scalar(self):
        policy = SrripPolicy()
        policy.bind(CacheGeometry(4 * 2 * 64, 2))
        assert setpath_tier_of(policy) == "scalar"

    def test_undeclared_subclass_demotes_to_scalar(self):
        # Declarations never inherit: a subclass may override hooks the
        # kernels do not model, and the kernel table is exact-type keyed.
        class TweakedSrrip(SrripPolicy):
            name = "tweaked-srrip"

        assert setpath_tier_of(TweakedSrrip) == "scalar"
        assert setpath_tier_of(TweakedSrrip()) == "scalar"

    def test_declared_tier_without_kernel_demotes_to_scalar(self):
        # Even an explicit declaration is not enough without an
        # exact-type kernel in the family table.
        class Declared(ReplacementPolicy):
            name = "declared"
            REPLAY_TIER = "set"

        assert Declared.replay_tier() == "set"
        assert setpath_tier_of(Declared) == "scalar"


class TestPartition:
    @pytest.mark.parametrize("use_numpy", [None, False])
    def test_partition_is_stable_per_set_grouping(self, use_numpy):
        stream = mixed_stream(n=3000)
        num_sets = 8
        part = partition_stream(
            stream.blocks, num_sets, use_numpy=use_numpy
        )
        assert sorted(part.order) == list(range(len(stream)))
        assert part.starts[0] == 0 and part.starts[-1] == len(stream)
        for s in range(num_sets):
            lo, hi = part.starts[s], part.starts[s + 1]
            positions = part.order[lo:hi]
            # ... every access of set s, in original stream order.
            assert positions == sorted(positions)
            for p in positions:
                assert stream.blocks[p] & (num_sets - 1) == s
            assert part.blocks[lo:hi] == [stream.blocks[p] for p in positions]


class TestObserverExactness:
    @pytest.mark.parametrize("policy", sorted(SETPATH_POLICIES))
    def test_callback_sequence_identical_to_scalar(self, policy):
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 4 * 64, 4)
        slow = RecordingObserver()
        LlcOnlySimulator(
            geometry, make_policy(policy, seed=11), observers=(slow,)
        ).run(stream)
        fast = RecordingObserver()
        result = replay_setpath(
            stream, geometry, make_policy(policy, seed=11), observers=(fast,)
        )
        assert fast.events == slow.events
        assert result.tier in ("set", "dueling")

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_counts_identical_across_geometries(self, geometry):
        stream = mixed_stream(n=2500, spread=geometry.num_blocks * 3)
        for policy in sorted(SETPATH_POLICIES):
            fast = replay_setpath(stream, geometry, make_policy(policy, seed=5))
            slow = LlcOnlySimulator(
                geometry, make_policy(policy, seed=5)
            ).run(stream)
            assert (fast.hits, fast.misses) == (slow.hits, slow.misses), policy

    @settings(max_examples=25, deadline=None)
    @given(
        policy=st.sampled_from(sorted(SETPATH_POLICIES)),
        seed=st.integers(0, 5),
        accesses=accesses_strategy,
    )
    def test_random_streams_bit_identical(self, policy, seed, accesses):
        stream = make_stream(accesses)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        slow = RecordingObserver()
        ref = LlcOnlySimulator(
            geometry, make_policy(policy, seed=seed), observers=(slow,)
        ).run(stream)
        fast = RecordingObserver()
        result = replay_setpath(
            stream, geometry, make_policy(policy, seed=seed), observers=(fast,)
        )
        assert (result.hits, result.misses) == (ref.hits, ref.misses)
        assert fast.events == slow.events

    def test_opt_walk_matches_scalar(self):
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 4 * 64, 4)
        next_use = compute_next_use(stream.blocks)
        slow = RecordingObserver()
        LlcOnlySimulator(
            geometry, BeladyOptPolicy(next_use), observers=(slow,)
        ).run(stream)
        fast = RecordingObserver()
        replay_setpath(
            stream, geometry, BeladyOptPolicy(next_use), observers=(fast,)
        )
        assert fast.events == slow.events


class TestWalkContract:
    def test_distances_are_degenerate_hit_miss_markers(self):
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 4 * 64, 4)
        walk = reconstruct_setpath_replay(
            stream, geometry, make_policy("srrip", seed=1)
        )
        assert set(walk.distances) <= {0, geometry.ways}
        assert walk.misses == sum(
            1 for d in walk.distances if d == geometry.ways
        )
        assert walk.hits + walk.misses == walk.n == len(stream)

    def test_ineligible_policy_is_rejected(self):
        stream = mixed_stream(n=200)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        with pytest.raises(SimulationError):
            reconstruct_setpath_replay(
                stream, geometry, make_policy("ship", seed=1)
            )


class TestDispatch:
    def test_gate_disables_every_tier(self):
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        for policy in ("lru", "srrip", "drrip"):
            assert try_fast_replay(
                stream, geometry, policy, fastpath=False
            ) is None

    def test_env_escape_hatch(self, monkeypatch):
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        assert try_fast_replay(stream, geometry, "srrip") is None
        assert try_fast_replay(stream, geometry, "srrip", fastpath=True) is not None
        monkeypatch.delenv(FASTPATH_ENV)
        assert try_fast_replay(stream, geometry, "srrip") is not None

    def test_scalar_tier_takes_native_backend(self, monkeypatch):
        # SHiP resolves to the scalar tier but is covered by the native
        # scalar backend: dispatch returns a scalar-tier result whose
        # backend records the native kernel, not the object model.
        monkeypatch.delenv("REPRO_SIM_NO_NATIVE", raising=False)
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        result = try_fast_replay(stream, geometry, "ship")
        assert result is not None
        assert result.tier == "scalar"
        assert result.backend in ("compact", "numba")

    def test_scalar_tier_declines_without_native(self):
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        assert try_fast_replay(stream, geometry, "ship", native=False) is None

    def test_uncovered_scalar_policies_decline(self):
        # Observer-carrying SHiP replays need the scalar model's residency
        # callbacks; bound instances carry state no offline kernel
        # reconstructs. Both fall through to the model.
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)

        class Observer:
            def residency_started(self, *a): pass
            def residency_ended(self, *a): pass

        assert try_fast_replay(
            stream, geometry, "ship", observers=(Observer(),)
        ) is None
        bound = make_policy("ship", seed=1)
        bound.bind(geometry)
        assert try_fast_replay(stream, geometry, bound) is None

    def test_tiers_are_recorded_on_results(self):
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        assert try_fast_replay(stream, geometry, "lru").tier == "stack"
        assert try_fast_replay(stream, geometry, "srrip").tier == "set"
        assert try_fast_replay(stream, geometry, "dip").tier == "dueling"

    def test_unbound_instance_passes_through(self):
        stream = mixed_stream(n=500)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        result = try_fast_replay(stream, geometry, LruPolicy())
        assert result is not None and result.tier == "stack"
        result = try_fast_replay(stream, geometry, SrripPolicy())
        assert result is not None and result.tier == "set"

    def test_replay_twice_is_deterministic(self):
        # Per-set RNG streams are pure functions of (seed, set): two
        # replays of the same stochastic policy are bit-identical.
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 4 * 64, 4)
        for policy in ("random", "bip", "brrip"):
            first = replay_setpath(stream, geometry, make_policy(policy, seed=9))
            second = replay_setpath(stream, geometry, make_policy(policy, seed=9))
            assert first == second
