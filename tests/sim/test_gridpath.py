"""Differential tests for the single-pass grid replay layer.

The grid layer's whole contract is *bit-identity with per-cell replay*:
every cell of a geometry or parameter grid must carry exactly the
counters an independent replay of that cell would have produced, with the
engine-assigned ``grid`` tier recorded where a shared pass ran and the
cell's own tier where it fell back. This file pins that matrix:

* :func:`lru_grid_hits` against per-associativity fastpath replays
  (Mattson inclusion, including degenerate grids);
* geometry grids for every eligible tier — stack (LRU), set
  (LIP/BIP/NRU/SRRIP/BRRIP/random), dueling (DIP/DRRIP) — plus the
  forced-scalar fallback pin (SHiP) and the disabled-fastpath gate;
* parameter grids — the stacked SRRIP kernel, stochastic epsilon
  variants over the shared partition, dueling variants, and mixed grids
  with stack/scalar stragglers;
* oracle grids/variants against independent ``run_oracle_study`` calls
  (the memoized annotation sharing must not change a single number);
* a hypothesis-driven adversarial stream case;
* the committed ``f7_capacity_sweep`` golden, which the F7 bench now
  regenerates *through* the grid path.
"""

import csv
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError
from repro.policies.base import REPLAY_GRID, REPLAY_SCALAR, REPLAY_STACK
from repro.policies.registry import make_policy
from repro.policies.rrip import BrripPolicy, SrripPolicy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.gridpath import (
    lru_grid_hits,
    replay_geometry_grid,
    replay_lru_grid,
    replay_param_grid,
)
from repro.sim.multipass import run_policy_on_stream
from repro.oracle.runner import run_oracle_study, run_oracle_study_grid, run_oracle_variants
from tests.conftest import make_stream
from tests.strategies import replay_stream_lists

SEED = 7

GRID_POLICIES = (
    "lru", "lip", "bip", "dip", "srrip", "brrip", "drrip", "nru", "random",
)

# Shared num_sets groups *and* a distinct one, so grids exercise both the
# walk/partition sharing and the per-num_sets re-partition.
GEOMETRY_GRID = [
    CacheGeometry(8 * 2 * 64, 2),    # 8 sets x 2 ways
    CacheGeometry(8 * 4 * 64, 4),    # 8 sets x 4 ways  (shares the group)
    CacheGeometry(8 * 8 * 64, 8),    # 8 sets x 8 ways  (shares the group)
    CacheGeometry(4 * 4 * 64, 4),    # 4 sets x 4 ways  (second group)
]


def mixed_stream(n=4000, spread=160):
    """A deterministic multi-core read/write stream with reuse."""
    accesses = []
    for i in range(n):
        block = (i * 7 + (i // 13) * 3) % spread
        accesses.append((i % 4, 0x100 + (i % 3) * 0x10, block, i % 5 == 0))
    return make_stream(accesses)


accesses_strategy = replay_stream_lists()


class TestLruGridHits:
    def test_matches_per_cell_fastpath(self):
        stream = mixed_stream()
        ways_grid = [1, 2, 3, 4, 8, 16]
        hits = lru_grid_hits(stream.blocks, 8, ways_grid)
        for ways in ways_grid:
            geometry = CacheGeometry(8 * ways * 64, ways)
            ref = run_policy_on_stream(stream, geometry, "lru", fastpath=True)
            assert hits[ways] == ref.hits

    def test_empty_grid_and_empty_stream(self):
        assert lru_grid_hits([1, 2, 3], 4, []) == {}
        assert lru_grid_hits([], 4, [1, 2]) == {1: 0, 2: 0}

    def test_single_cell_grid(self):
        stream = mixed_stream(600, 50)
        hits = lru_grid_hits(stream.blocks, 4, [2])
        ref = run_policy_on_stream(
            stream, CacheGeometry(4 * 2 * 64, 2), "lru", fastpath=True
        )
        assert hits == {2: ref.hits}


class TestGeometryGrid:
    @pytest.mark.parametrize("policy", GRID_POLICIES)
    def test_bit_identity_every_tier(self, policy):
        stream = mixed_stream()
        cells = replay_geometry_grid(
            stream, GEOMETRY_GRID, policy=policy, seed=SEED
        )
        assert len(cells) == len(GEOMETRY_GRID)
        for geometry, cell in zip(GEOMETRY_GRID, cells):
            ref = run_policy_on_stream(
                stream, geometry, policy, seed=SEED, fastpath=True
            )
            assert cell == ref
            assert cell.tier == REPLAY_GRID

    def test_scalar_policy_falls_back_per_cell(self):
        # SHiP's globally coupled SHCT makes it scalar-tier by design; the
        # grid layer must replay it per cell and record the scalar tier
        # (the PR 5 contract), never stamp it as grid.
        stream = mixed_stream(1500, 80)
        profile = {}
        cells = replay_geometry_grid(
            stream, GEOMETRY_GRID[:2], policy="ship", seed=SEED,
            profile=profile,
        )
        for geometry, cell in zip(GEOMETRY_GRID[:2], cells):
            ref = run_policy_on_stream(
                stream, geometry, "ship", seed=SEED, fastpath=True
            )
            assert cell == ref
            assert cell.tier == REPLAY_SCALAR
        assert profile["grid_fallback_cells"] == 2

    def test_disabled_fastpath_matches_scalar(self):
        stream = mixed_stream(1200, 60)
        cells = replay_geometry_grid(
            stream, GEOMETRY_GRID[:2], policy="srrip", seed=SEED,
            fastpath=False,
        )
        for geometry, cell in zip(GEOMETRY_GRID[:2], cells):
            scalar = LlcOnlySimulator(
                geometry,
                make_policy("srrip", seed=cell_seed("srrip")),
            ).run(stream)
            assert cell == scalar
            assert cell.tier != REPLAY_GRID

    def test_factory_spec_matches_per_cell_instances(self):
        stream = mixed_stream(1500, 90)
        cells = replay_geometry_grid(
            stream, GEOMETRY_GRID, policy=lambda: SrripPolicy(rrpv_bits=3),
            seed=SEED,
        )
        for geometry, cell in zip(GEOMETRY_GRID, cells):
            ref = run_policy_on_stream(
                stream, geometry, SrripPolicy(rrpv_bits=3), fastpath=True
            )
            assert cell == ref

    def test_prebuilt_instance_rejected(self):
        stream = mixed_stream(200, 20)
        with pytest.raises(SimulationError, match="fresh instance"):
            replay_geometry_grid(
                stream, GEOMETRY_GRID[:1], policy=SrripPolicy()
            )

    def test_bad_factory_rejected(self):
        stream = mixed_stream(200, 20)
        bound = SrripPolicy()
        bound.bind(GEOMETRY_GRID[0])
        with pytest.raises(SimulationError, match="unbound"):
            replay_geometry_grid(
                stream, GEOMETRY_GRID[:1], policy=lambda: bound
            )


def cell_seed(name, seed=SEED):
    """The per-cell derived seed replay uses for a registered name."""
    from repro.common.rng import derive_seed

    return derive_seed(seed, "replay", name)


class TestParamGrid:
    def test_stacked_srrip_bit_identity(self):
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 8 * 64, 8)
        bits = (1, 2, 3, 4)
        cells = replay_param_grid(
            stream, geometry, [SrripPolicy(rrpv_bits=b) for b in bits]
        )
        for b, cell in zip(bits, cells):
            ref = run_policy_on_stream(
                stream, geometry, SrripPolicy(rrpv_bits=b), fastpath=True
            )
            assert cell == ref
            assert cell.tier == REPLAY_GRID

    def test_stochastic_epsilon_grid_shares_partition_exactly(self):
        # BRRIP variants draw from per-set RNG streams derived from their
        # own seeds; replaying each over the shared partition must equal
        # the independent replay bit for bit.
        stream = mixed_stream(2500, 120)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        variants = [
            BrripPolicy(seed=3, throttle=8),
            BrripPolicy(seed=3, throttle=32),
            BrripPolicy(seed=11, throttle=32),
        ]
        cells = replay_param_grid(stream, geometry, variants)
        refs = [
            run_policy_on_stream(
                stream, geometry, BrripPolicy(seed=3, throttle=8),
                fastpath=True,
            ),
            run_policy_on_stream(
                stream, geometry, BrripPolicy(seed=3, throttle=32),
                fastpath=True,
            ),
            run_policy_on_stream(
                stream, geometry, BrripPolicy(seed=11, throttle=32),
                fastpath=True,
            ),
        ]
        for cell, ref in zip(cells, refs):
            assert cell == ref
            assert cell.tier == REPLAY_GRID

    def test_mixed_grid_tiers_and_fallbacks(self):
        # A grid mixing every tier: stacked SRRIPs, a dueling DRRIP, a
        # stack-tier LRU (nothing to share - keeps its own tier) and a
        # scalar SHiP (forced per-cell fallback pin).
        stream = mixed_stream(2500, 120)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        cells = replay_param_grid(
            stream, geometry,
            [
                SrripPolicy(rrpv_bits=1),
                SrripPolicy(rrpv_bits=2),
                make_policy("drrip", seed=cell_seed("drrip")),
                make_policy("lru", seed=cell_seed("lru")),
                make_policy("ship", seed=cell_seed("ship")),
            ],
        )
        refs = [
            run_policy_on_stream(
                stream, geometry, SrripPolicy(rrpv_bits=1), fastpath=True
            ),
            run_policy_on_stream(
                stream, geometry, SrripPolicy(rrpv_bits=2), fastpath=True
            ),
            run_policy_on_stream(
                stream, geometry, "drrip", seed=SEED, fastpath=True
            ),
            run_policy_on_stream(
                stream, geometry, "lru", seed=SEED, fastpath=True
            ),
            run_policy_on_stream(
                stream, geometry, "ship", seed=SEED, fastpath=True
            ),
        ]
        for cell, ref in zip(cells, refs):
            assert cell == ref
        tiers = [cell.tier for cell in cells]
        assert tiers == [
            REPLAY_GRID, REPLAY_GRID, REPLAY_GRID, REPLAY_STACK,
            REPLAY_SCALAR,
        ]

    def test_disabled_fastpath_all_scalar(self):
        stream = mixed_stream(800, 40)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        cells = replay_param_grid(
            stream, geometry,
            [SrripPolicy(rrpv_bits=1), SrripPolicy(rrpv_bits=2)],
            fastpath=False,
        )
        for b, cell in zip((1, 2), cells):
            scalar = LlcOnlySimulator(
                geometry, SrripPolicy(rrpv_bits=b)
            ).run(stream)
            assert cell == scalar

    def test_bound_instance_rejected(self):
        stream = mixed_stream(200, 20)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        bound = SrripPolicy()
        bound.bind(geometry)
        with pytest.raises(SimulationError, match="already\\s+bound"):
            replay_param_grid(stream, geometry, [bound])

    def test_non_policy_rejected(self):
        stream = mixed_stream(200, 20)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        with pytest.raises(SimulationError, match="instances"):
            replay_param_grid(stream, geometry, ["srrip"])


class TestOracleGrid:
    def test_geometry_grid_matches_independent_studies(self):
        stream = mixed_stream(3000, 140)
        geometries = [
            CacheGeometry(8 * 2 * 64, 2),
            CacheGeometry(8 * 4 * 64, 4),
            CacheGeometry(16 * 4 * 64, 4),
        ]
        grid = run_oracle_study_grid(stream, geometries, base="lru")
        for geometry, study in zip(geometries, grid):
            # A fresh stream defeats the per-stream memo, so this is a
            # genuinely independent recomputation.
            fresh = mixed_stream(3000, 140)
            ref = run_oracle_study(fresh, geometry, base="lru")
            assert study.base == ref.base
            assert study.oracle == ref.oracle
            assert study.shared_fill_fraction == ref.shared_fill_fraction
            assert study.protected_fills == ref.protected_fills
            assert study.exemptions == ref.exemptions
            assert study.horizon_factor == ref.horizon_factor

    def test_variants_share_base_pass_exactly(self):
        stream = mixed_stream(3000, 140)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        variants = [
            ("both", "budget"),
            ("victim-exempt", "budget"),
            ("both", "never"),
        ]
        studies = run_oracle_variants(stream, geometry, variants)
        for (mode, release), study in zip(variants, studies):
            fresh = mixed_stream(3000, 140)
            ref = run_oracle_study(fresh, geometry, mode=mode, release=release)
            assert study.base == ref.base
            assert study.oracle == ref.oracle
            assert study.protected_fills == ref.protected_fills
            assert study.exemptions == ref.exemptions


class TestHypothesisStreams:
    @settings(max_examples=25, deadline=None)
    @given(accesses=accesses_strategy)
    def test_adversarial_stream_grid_identity(self, accesses):
        stream = make_stream(accesses)
        geometries = [
            CacheGeometry(4 * 1 * 64, 1),
            CacheGeometry(4 * 2 * 64, 2),
            CacheGeometry(2 * 2 * 64, 2),
        ]
        lru_cells = replay_geometry_grid(
            stream, geometries, policy="lru", seed=SEED
        )
        srrip_cells = replay_geometry_grid(
            stream, geometries, policy="srrip", seed=SEED
        )
        for geometry, lru_cell, srrip_cell in zip(
            geometries, lru_cells, srrip_cells
        ):
            assert lru_cell == run_policy_on_stream(
                stream, geometry, "lru", seed=SEED, fastpath=True
            )
            assert srrip_cell == run_policy_on_stream(
                stream, geometry, "srrip", seed=SEED, fastpath=True
            )


class TestF7Golden:
    CSV = Path(__file__).parent.parent.parent / "benchmarks" / "results" / \
        "f7_capacity_sweep.csv"

    def test_committed_golden_invariants_hold(self):
        # The F7 bench regenerates this file *through* the grid path; the
        # committed numbers predate the grid layer, so the file staying
        # byte-stable across bench runs is the golden re-check. Here we
        # pin the invariants those numbers must satisfy so an accidental
        # regeneration with different physics cannot slip through.
        with self.CSV.open() as handle:
            rows = list(csv.DictReader(handle))
        assert [row["llc_size"] for row in rows] == [
            "2MB(full)", "4MB(full)", "8MB(full)", "16MB(full)"
        ]
        miss_ratios = [float(row["avg_lru_mr"]) for row in rows]
        assert miss_ratios == sorted(miss_ratios, reverse=True)
        reductions = {
            row["llc_size"]: float(row["avg_oracle_reduction"]) for row in rows
        }
        assert reductions["8MB(full)"] > reductions["4MB(full)"] > 0
