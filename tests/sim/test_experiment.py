"""Tests for experiment orchestration and caching."""

import pytest

from repro.common.config import CacheGeometry, MachineConfig
from repro.common.errors import ConfigError
from repro.sim.experiment import ExperimentContext, shared_context


@pytest.fixture
def context(tiny_machine):
    return ExperimentContext(
        tiny_machine, target_accesses=4_000, seed=5,
        workloads=["streamcluster", "swaptions"],
    )


class TestExperimentContext:
    def test_artifacts_cached(self, context):
        first = context.artifacts("streamcluster")
        second = context.artifacts("streamcluster")
        assert first is second

    def test_artifact_contents(self, context):
        artifacts = context.artifacts("streamcluster")
        assert artifacts.workload == "streamcluster"
        assert artifacts.trace_stats.num_accesses == 4_000
        assert artifacts.hierarchy_stats.accesses == 4_000
        assert len(artifacts.stream) == artifacts.hierarchy_stats.llc_accesses

    def test_unknown_workload_rejected(self, context):
        with pytest.raises(ConfigError):
            context.artifacts("canneal")

    def test_characterize(self, context):
        report = context.characterize("streamcluster")
        assert report.breakdown.residencies > 0
        # streamcluster's hits are dominated by shared residencies.
        assert report.breakdown.shared_hit_fraction > 0.5

    def test_compare_policies(self, context):
        comparison = context.compare_policies(
            "swaptions", ["lru", "srrip"], include_opt=True
        )
        assert set(comparison.policies()) == {"lru", "srrip", "opt"}
        assert comparison.results["opt"].misses <= comparison.results["lru"].misses

    def test_oracle_study(self, context):
        study = context.oracle_study("streamcluster")
        assert study.base.accesses == study.oracle.accesses

    def test_deterministic_across_contexts(self, tiny_machine):
        def misses():
            ctx = ExperimentContext(tiny_machine, target_accesses=3_000,
                                    seed=9, workloads=["dedup"])
            return ctx.artifacts("dedup").hierarchy_stats.llc_misses

        assert misses() == misses()

    def test_seed_changes_results(self, tiny_machine):
        def misses(seed):
            ctx = ExperimentContext(tiny_machine, target_accesses=3_000,
                                    seed=seed, workloads=["dedup"])
            return ctx.artifacts("dedup").stream.blocks

        assert list(misses(1)) != list(misses(2))


class TestSharedContext:
    def test_memoised_by_key(self):
        a = shared_context("scaled-4mb", target_accesses=1_000, seed=1)
        b = shared_context("scaled-4mb", target_accesses=1_000, seed=1)
        c = shared_context("scaled-8mb", target_accesses=1_000, seed=1)
        assert a is b
        assert a is not c

    def test_default_workloads_cover_all(self):
        context = shared_context("scaled-4mb", target_accesses=1_000, seed=99)
        assert len(context.workload_list) == 19


class TestDiskCache:
    def test_cache_roundtrip(self, tiny_machine, tmp_path):
        first = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        original = first.artifacts("water")
        assert any(tmp_path.iterdir())

        second = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        loaded = second.artifacts("water")
        assert list(loaded.stream.blocks) == list(original.stream.blocks)
        assert loaded.trace_stats == original.trace_stats
        assert loaded.hierarchy_stats == original.hierarchy_stats

    def test_cache_keys_differ_by_seed(self, tiny_machine, tmp_path):
        for seed in (1, 2):
            ExperimentContext(
                tiny_machine, target_accesses=3_000, seed=seed,
                workloads=["water"], cache_dir=tmp_path,
            ).artifacts("water")
        assert len(list(tmp_path.glob("*.rllc.gz"))) == 2

    def test_no_cache_dir_writes_nothing(self, tiny_machine, tmp_path):
        ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7, workloads=["water"]
        ).artifacts("water")
        assert not any(tmp_path.iterdir())

    def test_stats_count_each_cache_level(self, tiny_machine, tmp_path):
        first = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        first.artifacts("water")   # cold: record + store
        first.artifacts("water")   # warm: memory hit
        stats = first.cache_stats
        assert (stats.recordings, stats.disk_stores) == (1, 1)
        assert stats.memory_hits == 1
        assert stats.disk_hits == 0

        second = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        second.artifacts("water")  # warm disk: load, no recording
        assert second.cache_stats.disk_hits == 1
        assert second.cache_stats.recordings == 0
        assert second.cache_stats.as_dict()["disk_hits"] == 1

    def test_corrupt_entry_recovers_by_rerecording(self, tiny_machine, tmp_path):
        first = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        original = first.artifacts("water")
        (stream_file,) = tmp_path.glob("*.rllc.gz")
        blob = stream_file.read_bytes()
        stream_file.write_bytes(blob[: len(blob) // 2])

        second = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        recovered = second.artifacts("water")
        assert second.cache_stats.corrupt_entries == 1
        assert second.cache_stats.recordings == 1
        assert list(recovered.stream.blocks) == list(original.stream.blocks)
        # The bad entry was replaced: a third context loads cleanly.
        third = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        third.artifacts("water")
        assert third.cache_stats.disk_hits == 1


class TestMemoryBounds:
    def test_clear_drops_memory_only(self, tiny_machine, tmp_path):
        context = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water", "fft"], cache_dir=tmp_path,
        )
        context.artifacts("water")
        context.artifacts("fft")
        assert context.cached_workloads() == ["water", "fft"]
        context.clear()
        assert context.cached_workloads() == []
        # Disk entries survive: the reload is a disk hit, not a recording.
        context.artifacts("water")
        assert context.cache_stats.disk_hits == 1
        assert context.cache_stats.recordings == 2

    def test_max_cached_evicts_lru_order(self, tiny_machine):
        context = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water", "fft", "radix"], max_cached=2,
        )
        context.artifacts("water")
        context.artifacts("fft")
        context.artifacts("water")    # refresh water; fft is now oldest
        context.artifacts("radix")    # evicts fft
        assert context.cached_workloads() == ["water", "radix"]
        assert context.cache_stats.memory_evictions == 1

    def test_max_cached_must_be_positive(self, tiny_machine):
        with pytest.raises(ConfigError):
            ExperimentContext(tiny_machine, max_cached=0)

    def test_cache_dir_must_not_be_a_file(self, tiny_machine, tmp_path):
        blocker = tmp_path / "taken"
        blocker.write_text("oops")
        with pytest.raises(ConfigError, match="not a directory"):
            ExperimentContext(tiny_machine, cache_dir=blocker)


class TestCacheMaintenance:
    def test_entries_and_clear(self, tiny_machine, tmp_path):
        from repro.sim.experiment import cache_entries, clear_cache

        ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        ).artifacts("water")
        stranger = tmp_path / "notes.txt"
        stranger.write_text("keep me")

        entries = cache_entries(tmp_path)
        assert len(entries) == 2  # stream + stats json
        assert all(size > 0 for __, size in entries)

        removed = clear_cache(tmp_path)
        assert removed == 2
        assert cache_entries(tmp_path) == []
        assert stranger.exists()  # unrelated files are never touched

    def test_missing_directory_is_empty(self, tmp_path):
        from repro.sim.experiment import cache_entries, clear_cache

        missing = tmp_path / "nope"
        assert cache_entries(missing) == []
        assert clear_cache(missing) == 0

    def test_orphan_tmp_files_reported_and_swept(self, tiny_machine, tmp_path):
        from repro.sim.experiment import (
            cache_entries,
            clear_cache,
            orphan_tmp_entries,
        )

        ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        ).artifacts("water")
        # Leftovers of a writer killed mid-store (pid 4242).
        (tmp_path / "tmp4242-dead.rllc.gz").write_bytes(b"partial")
        (tmp_path / "tmp4242-dead.json").write_text("{}")

        published = cache_entries(tmp_path)
        orphans = orphan_tmp_entries(tmp_path)
        assert len(published) == 2  # orphans never counted as artifacts
        assert sorted(path.name for path, __ in orphans) \
            == ["tmp4242-dead.json", "tmp4242-dead.rllc.gz"]

        assert clear_cache(tmp_path) == 4  # sweeps orphans too
        assert orphan_tmp_entries(tmp_path) == []
        assert cache_entries(tmp_path) == []


class TestStoreCrashSafety:
    """A writer killed between the two publish renames must be harmless."""

    def _crash_on_stats_rename(self, monkeypatch):
        import os as os_module

        real_replace = os_module.replace
        calls = []

        def flaky_replace(src, dst):
            calls.append(str(dst))
            if str(dst).endswith(".json"):
                raise KeyboardInterrupt("killed between renames")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.sim.experiment.os.replace", flaky_replace)
        return calls

    def test_killed_store_leaves_no_stale_stats(self, tiny_machine, tmp_path,
                                                monkeypatch):
        from repro.sim.experiment import orphan_tmp_entries

        calls = self._crash_on_stats_rename(monkeypatch)
        first = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        with pytest.raises(KeyboardInterrupt):
            first.artifacts("water")
        # The stream rename happened first; the stats never published.
        assert any(dst.endswith(".rllc.gz") for dst in calls)
        published_stats = [p for p in tmp_path.glob("*.json")
                           if not p.name.startswith("tmp")]
        assert published_stats == []
        # The unpublished stats temp is a recognised, sweepable orphan.
        orphans = orphan_tmp_entries(tmp_path)
        assert len(orphans) == 1
        assert orphans[0][0].name.endswith(".json")
        assert orphans[0][0].name.startswith("tmp")

        monkeypatch.undo()
        # A fresh context must not trust the half-published entry: the
        # stream-without-stats pair reads as a miss and re-records to the
        # same bits.
        second = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        recovered = second.artifacts("water")
        assert second.cache_stats.recordings == 1
        reference = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7, workloads=["water"]
        ).artifacts("water")
        assert list(recovered.stream.blocks) == list(reference.stream.blocks)
        assert recovered.hierarchy_stats == reference.hierarchy_stats
