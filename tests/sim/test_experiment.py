"""Tests for experiment orchestration and caching."""

import pytest

from repro.common.config import CacheGeometry, MachineConfig
from repro.common.errors import ConfigError
from repro.sim.experiment import ExperimentContext, shared_context


@pytest.fixture
def context(tiny_machine):
    return ExperimentContext(
        tiny_machine, target_accesses=4_000, seed=5,
        workloads=["streamcluster", "swaptions"],
    )


class TestExperimentContext:
    def test_artifacts_cached(self, context):
        first = context.artifacts("streamcluster")
        second = context.artifacts("streamcluster")
        assert first is second

    def test_artifact_contents(self, context):
        artifacts = context.artifacts("streamcluster")
        assert artifacts.workload == "streamcluster"
        assert artifacts.trace_stats.num_accesses == 4_000
        assert artifacts.hierarchy_stats.accesses == 4_000
        assert len(artifacts.stream) == artifacts.hierarchy_stats.llc_accesses

    def test_unknown_workload_rejected(self, context):
        with pytest.raises(ConfigError):
            context.artifacts("canneal")

    def test_characterize(self, context):
        report = context.characterize("streamcluster")
        assert report.breakdown.residencies > 0
        # streamcluster's hits are dominated by shared residencies.
        assert report.breakdown.shared_hit_fraction > 0.5

    def test_compare_policies(self, context):
        comparison = context.compare_policies(
            "swaptions", ["lru", "srrip"], include_opt=True
        )
        assert set(comparison.policies()) == {"lru", "srrip", "opt"}
        assert comparison.results["opt"].misses <= comparison.results["lru"].misses

    def test_oracle_study(self, context):
        study = context.oracle_study("streamcluster")
        assert study.base.accesses == study.oracle.accesses

    def test_deterministic_across_contexts(self, tiny_machine):
        def misses():
            ctx = ExperimentContext(tiny_machine, target_accesses=3_000,
                                    seed=9, workloads=["dedup"])
            return ctx.artifacts("dedup").hierarchy_stats.llc_misses

        assert misses() == misses()

    def test_seed_changes_results(self, tiny_machine):
        def misses(seed):
            ctx = ExperimentContext(tiny_machine, target_accesses=3_000,
                                    seed=seed, workloads=["dedup"])
            return ctx.artifacts("dedup").stream.blocks

        assert list(misses(1)) != list(misses(2))


class TestSharedContext:
    def test_memoised_by_key(self):
        a = shared_context("scaled-4mb", target_accesses=1_000, seed=1)
        b = shared_context("scaled-4mb", target_accesses=1_000, seed=1)
        c = shared_context("scaled-8mb", target_accesses=1_000, seed=1)
        assert a is b
        assert a is not c

    def test_default_workloads_cover_all(self):
        context = shared_context("scaled-4mb", target_accesses=1_000, seed=99)
        assert len(context.workload_list) == 19


class TestDiskCache:
    def test_cache_roundtrip(self, tiny_machine, tmp_path):
        first = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        original = first.artifacts("water")
        assert any(tmp_path.iterdir())

        second = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7,
            workloads=["water"], cache_dir=tmp_path,
        )
        loaded = second.artifacts("water")
        assert list(loaded.stream.blocks) == list(original.stream.blocks)
        assert loaded.trace_stats == original.trace_stats
        assert loaded.hierarchy_stats == original.hierarchy_stats

    def test_cache_keys_differ_by_seed(self, tiny_machine, tmp_path):
        for seed in (1, 2):
            ExperimentContext(
                tiny_machine, target_accesses=3_000, seed=seed,
                workloads=["water"], cache_dir=tmp_path,
            ).artifacts("water")
        assert len(list(tmp_path.glob("*.rllc.gz"))) == 2

    def test_no_cache_dir_writes_nothing(self, tiny_machine, tmp_path):
        ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=7, workloads=["water"]
        ).artifacts("water")
        assert not any(tmp_path.iterdir())
