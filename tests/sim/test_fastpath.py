"""Equivalence tests for the exact stack-distance LRU fast path.

The load-bearing property is *bit-identity*: for every stream and geometry,
:func:`replay_lru_fastpath` must produce exactly what the scalar
``LlcOnlySimulator(geometry, LruPolicy(), observers)`` replay produces —
same hit/miss counts, same observer callbacks with the same arguments in
the same order (victim-ended before fill-started, forced flushes in
(set, way) order). Hypothesis drives random streams across geometries and
both metadata-reconstruction kernels (numpy and the pure-Python twin).
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.llc import ResidencyObserver
from repro.characterization.hits import SharingClassifier
from repro.characterization.phases import SharingPhaseTracker
from repro.common.config import CacheGeometry
from repro.common.npsupport import HAVE_NUMPY
from repro.oracle.residency import FillSharingLog
from repro.policies.lru import LruPolicy
from repro.predictors.harness import PredictorHarness
from repro.predictors.registry import make_predictor
from repro.sim.engine import LlcOnlySimulator
from repro.sim.fastpath import (
    FASTPATH_ENV,
    fastpath_eligible,
    fastpath_enabled,
    lru_stack_distances,
    reconstruct_lru_replay,
    replay_lru_fastpath,
)
from repro.sim.multipass import run_policy_on_stream
from tests.conftest import make_stream
from tests.strategies import replay_stream_lists

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

GEOMETRIES = [
    CacheGeometry(1 * 1 * 64, 1),    # 1 set x 1 way (degenerate)
    CacheGeometry(4 * 2 * 64, 2),    # 4 sets x 2 ways
    CacheGeometry(2 * 4 * 64, 4),    # 2 sets x 4 ways
    CacheGeometry(8 * 8 * 64, 8),    # 8 sets x 8 ways
]


class RecordingObserver(ResidencyObserver):
    """Logs every callback verbatim for sequence comparison."""

    def __init__(self):
        self.events = []

    def residency_started(self, block, set_index, fill_ordinal, pc, core):
        self.events.append(("started", block, set_index, fill_ordinal, pc, core))

    def residency_ended(self, block, set_index, fill_ordinal, end_ordinal,
                        fill_pc, fill_core, core_mask, write_mask, hits,
                        other_hits, forced):
        self.events.append((
            "ended", block, set_index, fill_ordinal, end_ordinal, fill_pc,
            fill_core, core_mask, write_mask, hits, other_hits, forced,
        ))


def scalar_replay(stream, geometry, observers=()):
    return LlcOnlySimulator(geometry, LruPolicy(), observers=observers).run(stream)


accesses_strategy = replay_stream_lists(max_block=40, min_size=0, max_size=300)


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(accesses=accesses_strategy, geometry_index=st.integers(0, 3))
    def test_counts_and_callbacks_bit_identical(self, accesses, geometry_index):
        geometry = GEOMETRIES[geometry_index]
        stream = make_stream(accesses)

        slow_obs, fast_obs = RecordingObserver(), RecordingObserver()
        slow = scalar_replay(stream, geometry, observers=(slow_obs,))
        fast = replay_lru_fastpath(stream, geometry, observers=(fast_obs,))

        assert (fast.accesses, fast.hits, fast.misses) \
            == (slow.accesses, slow.hits, slow.misses)
        assert fast.policy == slow.policy == "lru"
        assert fast_obs.events == slow_obs.events

    @settings(max_examples=40, deadline=None)
    @given(accesses=accesses_strategy, geometry_index=st.integers(0, 3))
    def test_python_kernel_matches_scalar(self, accesses, geometry_index):
        geometry = GEOMETRIES[geometry_index]
        stream = make_stream(accesses)
        slow_obs, fast_obs = RecordingObserver(), RecordingObserver()
        scalar_replay(stream, geometry, observers=(slow_obs,))
        replay_lru_fastpath(
            stream, geometry, observers=(fast_obs,), use_numpy=False
        )
        assert fast_obs.events == slow_obs.events

    @needs_numpy
    @settings(max_examples=40, deadline=None)
    @given(accesses=accesses_strategy, geometry_index=st.integers(0, 3))
    def test_numpy_kernel_matches_python(self, accesses, geometry_index):
        geometry = GEOMETRIES[geometry_index]
        stream = make_stream(accesses)
        py = reconstruct_lru_replay(stream, geometry, use_numpy=False)
        np_ = reconstruct_lru_replay(stream, geometry, use_numpy=True)
        assert list(np_.res_hits) == list(py.res_hits)
        assert list(np_.res_other_hits) == list(py.res_other_hits)
        assert list(np_.res_core_mask) == list(py.res_core_mask)
        assert list(np_.res_write_mask) == list(py.res_write_mask)

    @settings(max_examples=40, deadline=None)
    @given(accesses=accesses_strategy, geometry_index=st.integers(0, 3))
    def test_no_observer_counts_match_scalar(self, accesses, geometry_index):
        geometry = GEOMETRIES[geometry_index]
        stream = make_stream(accesses)
        slow = scalar_replay(stream, geometry)
        fast = replay_lru_fastpath(stream, geometry)
        assert fast == slow  # LlcSimResult equality excludes timing

    @needs_numpy
    def test_wide_core_ids_defer_to_python(self):
        # Core 63 overflows the int64 mask kernel; the numpy pass must
        # defer rather than produce wrong masks.
        stream = make_stream([(63, 0x100, b, False) for b in range(8)]
                             + [(63, 0x100, b, False) for b in range(8)])
        geometry = CacheGeometry(2 * 4 * 64, 4)
        obs_fast, obs_slow = RecordingObserver(), RecordingObserver()
        replay_lru_fastpath(stream, geometry, observers=(obs_fast,),
                            use_numpy=True)
        scalar_replay(stream, geometry, observers=(obs_slow,))
        assert obs_fast.events == obs_slow.events


class TestStackDistances:
    def brute_force(self, blocks, num_sets, ways):
        """Distance by definition: distinct same-set blocks since last use."""
        out = []
        for i, block in enumerate(blocks):
            prev = None
            for j in range(i - 1, -1, -1):
                if blocks[j] == block:
                    prev = j
                    break
            if prev is None:
                out.append(ways)
                continue
            distinct = {
                blocks[j] for j in range(prev + 1, i)
                if (blocks[j] & (num_sets - 1)) == (block & (num_sets - 1))
                and blocks[j] != block
            }
            out.append(min(len(distinct), ways))
        return out

    @settings(max_examples=60, deadline=None)
    @given(blocks=st.lists(st.integers(0, 30), max_size=120),
           geometry_index=st.integers(0, 3))
    def test_matches_brute_force(self, blocks, geometry_index):
        geometry = GEOMETRIES[geometry_index]
        got = lru_stack_distances(blocks, geometry.num_sets, geometry.ways)
        assert list(got) == self.brute_force(
            blocks, geometry.num_sets, geometry.ways
        )

    def test_hit_iff_distance_below_ways(self, small_geometry):
        blocks = [0, 8, 16, 24, 32, 0, 8, 99, 0]
        stream = make_stream([(0, 0x1, b, False) for b in blocks])
        distances = lru_stack_distances(
            blocks, small_geometry.num_sets, small_geometry.ways
        )
        slow = scalar_replay(stream, small_geometry)
        hits = sum(1 for d in distances if d < small_geometry.ways)
        assert hits == slow.hits


class TestRealObservers:
    """The observers the pipeline actually attaches see identical state."""

    def _stream(self):
        import random

        rng = random.Random(7)
        return make_stream([
            (rng.randrange(4), rng.choice([0x10, 0x20, 0x30]),
             rng.randrange(60), rng.random() < 0.3)
            for __ in range(4000)
        ])

    def test_sharing_classifier_breakdown(self, small_geometry):
        stream = self._stream()
        slow_c, fast_c = SharingClassifier(), SharingClassifier()
        scalar_replay(stream, small_geometry, observers=(slow_c,))
        replay_lru_fastpath(stream, small_geometry, observers=(fast_c,))
        assert fast_c.breakdown == slow_c.breakdown

    def test_fill_sharing_log(self, small_geometry):
        stream = self._stream()
        slow_log = FillSharingLog(len(stream))
        fast_log = FillSharingLog(len(stream))
        scalar_replay(stream, small_geometry, observers=(slow_log,))
        replay_lru_fastpath(stream, small_geometry, observers=(fast_log,))
        assert fast_log.total_fills == slow_log.total_fills
        assert fast_log.shared_fills == slow_log.shared_fills

    def test_predictor_harness_matrix(self, small_geometry):
        stream = self._stream()
        slow_h = PredictorHarness(make_predictor("hybrid"))
        fast_h = PredictorHarness(make_predictor("hybrid"))
        scalar_replay(stream, small_geometry, observers=(slow_h,))
        replay_lru_fastpath(stream, small_geometry, observers=(fast_h,))
        assert fast_h.matrix == slow_h.matrix

    def test_phase_tracker_stats(self, small_geometry):
        stream = self._stream()
        slow_t, fast_t = SharingPhaseTracker(), SharingPhaseTracker()
        scalar_replay(stream, small_geometry, observers=(slow_t,))
        replay_lru_fastpath(stream, small_geometry, observers=(fast_t,))
        assert fast_t.finalize() == slow_t.finalize()


class TestGates:
    def test_eligibility_is_narrow(self):
        assert fastpath_eligible("lru")
        assert not fastpath_eligible("lip")
        assert not fastpath_eligible("srrip")
        # Unbound instances inherit the class's declared tier; a *bound*
        # instance may carry pre-seeded state and never qualifies.
        assert fastpath_eligible(LruPolicy())
        bound = LruPolicy()
        bound.bind(CacheGeometry(4 * 2 * 64, 2))
        assert not fastpath_eligible(bound)

    def test_enabled_three_state(self, monkeypatch):
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        assert fastpath_enabled(None)
        assert fastpath_enabled(True)
        assert not fastpath_enabled(False)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        assert not fastpath_enabled(None)   # env disables auto...
        assert fastpath_enabled(True)       # ...but an explicit True wins
        monkeypatch.setenv(FASTPATH_ENV, "")
        assert fastpath_enabled(None)       # empty value = unset

    def test_run_policy_on_stream_identical_either_path(self, small_geometry):
        stream = make_stream([(0, 0x1, b % 37, False) for b in range(2000)])
        fast = run_policy_on_stream(stream, small_geometry, "lru")
        slow = run_policy_on_stream(
            stream, small_geometry, "lru", fastpath=False
        )
        assert fast == slow

    def test_env_escape_hatch(self, small_geometry, monkeypatch):
        stream = make_stream([(0, 0x1, b % 37, False) for b in range(500)])
        monkeypatch.setenv(FASTPATH_ENV, "1")
        disabled = run_policy_on_stream(stream, small_geometry, "lru")
        monkeypatch.delenv(FASTPATH_ENV)
        enabled = run_policy_on_stream(stream, small_geometry, "lru")
        assert disabled == enabled

    def test_policy_instance_bypasses_fastpath(self, small_geometry):
        # A pre-built LruPolicy must replay through the scalar model even
        # with the gate wide open; the result is the same either way, so
        # assert on behaviour: instance and name paths agree.
        stream = make_stream([(0, 0x1, b % 23, False) for b in range(800)])
        by_name = run_policy_on_stream(stream, small_geometry, "lru")
        by_instance = run_policy_on_stream(stream, small_geometry, LruPolicy())
        assert (by_name.hits, by_name.misses) \
            == (by_instance.hits, by_instance.misses)


class TestPipelineEquivalence:
    """Fastpath on vs off through the high-level study entry points."""

    def _stream(self):
        import random

        rng = random.Random(3)
        return make_stream([
            (rng.randrange(2), rng.choice([0x10, 0x20]),
             rng.randrange(50), rng.random() < 0.25)
            for __ in range(3000)
        ])

    def test_oracle_study_invariant(self, small_geometry):
        from repro.oracle.runner import run_oracle_study

        stream = self._stream()
        fast = run_oracle_study(stream, small_geometry, fastpath=True)
        slow = run_oracle_study(stream, small_geometry, fastpath=False)
        assert fast.base == slow.base
        assert fast.oracle == slow.oracle
        assert fast.shared_fill_fraction == slow.shared_fill_fraction
        assert fast.horizon_factor == slow.horizon_factor

    def test_characterize_invariant(self, small_geometry):
        from repro.characterization.report import characterize_stream

        stream = self._stream()
        fast = characterize_stream(stream, small_geometry, fastpath=True)
        slow = characterize_stream(stream, small_geometry, fastpath=False)
        assert fast.result == slow.result
        assert fast.breakdown == slow.breakdown
        assert fast.phases == slow.phases
