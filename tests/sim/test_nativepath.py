"""Differential tests for the native scalar-tier backend.

The nativepath contract is the same one every other replay tier carries:
*bit-identity with the scalar model*. SHiP replayed through the compact
(or numba) kernel must produce exactly the counters
``LlcOnlySimulator(geometry, ShipPolicy()).run(stream)`` produces —
including parameterized variants, adversarial hypothesis streams, and the
single-set degenerate geometry — with the scalar tier recorded (this is a
faster *backend*, not a new tier) and the kernel that ran recorded in
``result.backend``. The fallback chain is pinned the same way the grid
layer pins its forced-scalar cells: gated off, observer-carrying,
undeclared-subclass, and bound-instance replays all land on the object
model with ``backend == "model"``.

The intra-replay sharding half of the backend is pinned here too: the
set-partitioned count kernels split across ``kernel_jobs`` worker threads
must be bit-identical to the serial pass for the whole non-dueling policy
matrix (per-set state and per-set RNG streams make the decomposition
exact — DESIGN.md decision 11).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheGeometry
from repro.common.npsupport import HAVE_NUMPY
from repro.common.rng import derive_seed
from repro.policies.base import REPLAY_SCALAR
from repro.policies.registry import make_policy
from repro.policies.ship import ShipPolicy
from repro.sim.engine import LlcOnlySimulator
from repro.sim.multipass import run_policy_on_stream
from repro.sim.nativepath import (
    KERNEL_JOBS_ENV,
    NO_NATIVE_ENV,
    native_eligible,
    replay_ship_nativepath,
    resolve_kernel_jobs,
    try_native_replay,
)
from repro.sim.setpath import replay_setpath, try_fast_replay
from tests.conftest import make_stream
from tests.strategies import SIGNATURE_PCS, replay_stream_lists

SEED = 11


@pytest.fixture(autouse=True)
def _auto_native_gates(monkeypatch):
    """Pin the native/sharding env gates to their defaults.

    The CI matrix runs the whole suite with ``REPRO_SIM_NO_NATIVE=1`` (the
    escape-hatch job); these tests probe the gates themselves, so they
    must see the unset-auto state regardless of the ambient environment.
    """
    monkeypatch.delenv(NO_NATIVE_ENV, raising=False)
    monkeypatch.delenv(KERNEL_JOBS_ENV, raising=False)

GEOMETRIES = [
    CacheGeometry(8 * 4 * 64, 4),    # 8 sets x 4 ways
    CacheGeometry(16 * 8 * 64, 8),   # 16 sets x 8 ways
    CacheGeometry(1 * 4 * 64, 4),    # single set (set_mask == 0)
    CacheGeometry(4 * 1 * 64, 1),    # direct-mapped
]

SHARDED_POLICIES = ("lip", "bip", "nru", "srrip", "brrip", "random")


def cell_seed(name: str) -> int:
    """The seed ``run_policy_on_stream`` derives for a named replay."""
    return derive_seed(SEED, "replay", name)


def mixed_stream(n=4000, spread=160, pcs=5):
    """A deterministic multi-core read/write stream with PC locality."""
    accesses = []
    for i in range(n):
        block = (i * 7 + (i // 13) * 3) % spread
        pc = 0x400000 + ((i * 11) % pcs) * 0x24
        accesses.append((i % 4, pc, block, i % 5 == 0))
    return make_stream(accesses)


accesses_strategy = replay_stream_lists(pcs=SIGNATURE_PCS)


def scalar_reference(stream, geometry, seed=SEED):
    """The pure scalar-model SHiP replay nativepath must reproduce."""
    return run_policy_on_stream(
        stream, geometry, "ship", seed=seed, fastpath=False
    )


class TestShipBitIdentity:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_matches_scalar_model(self, geometry):
        stream = mixed_stream()
        ref = scalar_reference(stream, geometry)
        native = replay_ship_nativepath(stream, geometry, ShipPolicy())
        assert native == ref
        assert native.tier == REPLAY_SCALAR
        assert native.backend in ("compact", "numba")

    def test_parameter_variants_match(self):
        stream = mixed_stream(3000, 90)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        for rrpv_bits, shct_bits, counter_bits in [
            (1, 4, 1), (2, 6, 2), (3, 8, 3), (2, 14, 2),
        ]:
            variant = ShipPolicy(
                rrpv_bits=rrpv_bits, shct_bits=shct_bits,
                counter_bits=counter_bits,
            )
            ref = LlcOnlySimulator(
                geometry,
                ShipPolicy(rrpv_bits=rrpv_bits, shct_bits=shct_bits,
                           counter_bits=counter_bits),
            ).run(stream)
            assert replay_ship_nativepath(stream, geometry, variant) == ref

    def test_kernel_leaves_instance_untouched(self):
        stream = mixed_stream(1000, 60)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        policy = ShipPolicy()
        before = list(policy._shct)
        replay_ship_nativepath(stream, geometry, policy)
        assert policy.geometry is None
        assert policy._shct == before

    def test_profile_records_native_stages(self):
        stream = mixed_stream(1000, 60)
        profile = {}
        replay_ship_nativepath(
            stream, CacheGeometry(8 * 4 * 64, 4), ShipPolicy(),
            profile=profile,
        )
        assert profile["native_prepare"] >= 0.0
        assert profile["native_kernel"] >= 0.0
        assert profile["native_backend"] in ("compact", "numba")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_numpy_twin_matches_python_signatures(self):
        # The vectorized and pure-Python signature preparations feed the
        # same kernel; force each and compare whole results.
        stream = mixed_stream(2000, 80)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        a = replay_ship_nativepath(stream, geometry, ShipPolicy(),
                                   use_numpy=False)
        b = replay_ship_nativepath(stream, geometry, ShipPolicy(),
                                   use_numpy=True)
        assert a == b

    def test_empty_stream(self):
        stream = make_stream([])
        result = replay_ship_nativepath(
            stream, CacheGeometry(8 * 4 * 64, 4), ShipPolicy()
        )
        assert (result.accesses, result.hits, result.misses) == (0, 0, 0)

    @settings(max_examples=40, deadline=None)
    @given(accesses=accesses_strategy)
    def test_hypothesis_streams(self, accesses):
        stream = make_stream(accesses)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        ref = LlcOnlySimulator(geometry, ShipPolicy()).run(stream)
        assert replay_ship_nativepath(stream, geometry, ShipPolicy()) == ref


class TestFallbackChain:
    def test_auto_dispatch_records_native_backend(self):
        stream = mixed_stream(1200, 70)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        result = run_policy_on_stream(stream, geometry, "ship", seed=SEED)
        assert result.tier == REPLAY_SCALAR
        assert result.backend in ("compact", "numba")
        assert result == scalar_reference(stream, geometry)

    def test_env_escape_hatch_lands_on_model(self, monkeypatch):
        stream = mixed_stream(800, 50)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        gated = run_policy_on_stream(stream, geometry, "ship", seed=SEED)
        assert gated.backend == "model"
        assert gated.tier == REPLAY_SCALAR
        # =0 counts as unset (the env_flag contract) — native again.
        monkeypatch.setenv(NO_NATIVE_ENV, "0")
        auto = run_policy_on_stream(stream, geometry, "ship", seed=SEED)
        assert auto.backend in ("compact", "numba")
        assert gated == auto

    def test_native_false_param_lands_on_model(self):
        stream = mixed_stream(800, 50)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        result = run_policy_on_stream(
            stream, geometry, "ship", seed=SEED, native=False
        )
        assert result.backend == "model"

    def test_undeclared_subclass_lands_on_model(self):
        # Exact-type guard: a subclass must not ride the parent's kernel
        # (it resolves to the scalar tier through the non-inheriting
        # REPLAY_TIER, and native_eligible re-checks the exact type).
        class TweakedShip(ShipPolicy):
            def on_hit(self, set_index, way, block, pc, core, is_write):
                self._rrpv[set_index][way] = 1  # not 0: different policy

        stream = mixed_stream(800, 50)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        assert not native_eligible(TweakedShip())
        result = run_policy_on_stream(stream, geometry, TweakedShip())
        assert result.backend == "model"
        assert result.tier == REPLAY_SCALAR

    def test_bound_instance_lands_on_model(self):
        stream = mixed_stream(800, 50)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        bound = ShipPolicy()
        bound.bind(geometry)
        assert not native_eligible(bound)
        assert try_native_replay(stream, geometry, bound) is None

    def test_observers_decline(self):
        class Observer:
            def residency_started(self, *args): pass
            def residency_ended(self, *args): pass

        stream = mixed_stream(400, 30)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        assert try_native_replay(
            stream, geometry, "ship", observers=(Observer(),)
        ) is None

    def test_no_fastpath_still_means_pure_model(self):
        # The native hook sits behind the fastpath gate, so the
        # differential suite's fastpath=False reference stays the pure
        # scalar model.
        stream = mixed_stream(400, 30)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        assert try_fast_replay(
            stream, geometry, "ship", fastpath=False
        ) is None
        result = run_policy_on_stream(
            stream, geometry, "ship", seed=SEED, fastpath=False
        )
        assert result.backend == "model"

    def test_name_and_instance_agree(self):
        stream = mixed_stream(900, 55)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        by_name = try_native_replay(stream, geometry, "ship")
        by_instance = try_native_replay(stream, geometry, ShipPolicy())
        assert by_name is not None and by_instance is not None
        assert by_name == by_instance

    def test_provenance_survives_as_dict(self):
        stream = mixed_stream(400, 30)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        payload = run_policy_on_stream(
            stream, geometry, "ship", seed=SEED
        ).as_dict()
        assert payload["tier"] == REPLAY_SCALAR
        assert payload["backend"] in ("compact", "numba")


class TestKernelJobs:
    def test_resolution_matrix(self, monkeypatch):
        monkeypatch.delenv(KERNEL_JOBS_ENV, raising=False)
        assert resolve_kernel_jobs() == 1
        assert resolve_kernel_jobs(3) == 3
        assert resolve_kernel_jobs(0) >= 1
        monkeypatch.setenv(KERNEL_JOBS_ENV, "4")
        assert resolve_kernel_jobs() == 4
        assert resolve_kernel_jobs(2) == 2  # explicit beats env
        monkeypatch.setenv(KERNEL_JOBS_ENV, "not-a-number")
        assert resolve_kernel_jobs() == 1
        monkeypatch.setenv(KERNEL_JOBS_ENV, "-5")
        assert resolve_kernel_jobs() == 1

    @pytest.mark.parametrize("policy", SHARDED_POLICIES)
    def test_sharded_bit_identity(self, policy):
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 4 * 64, 4)
        serial = run_policy_on_stream(stream, geometry, policy, seed=SEED)
        for jobs in (2, 3, 8, 64):
            sharded = run_policy_on_stream(
                stream, geometry, policy, seed=SEED, kernel_jobs=jobs
            )
            assert sharded == serial, (policy, jobs)
            assert sharded.backend.endswith(
                f"+threads{min(jobs, geometry.num_sets)}"
            )

    def test_all_leader_dueling_stays_serial_and_exact(self):
        # At 8 sets every set is a sampling leader (no followers exist),
        # so there is nothing to shard: the replay must stay serial and
        # honest — no "+threads" claim for threads that never ran.
        stream = mixed_stream()
        geometry = CacheGeometry(8 * 4 * 64, 4)
        for policy in ("dip", "drrip"):
            serial = run_policy_on_stream(stream, geometry, policy, seed=SEED)
            sharded = run_policy_on_stream(
                stream, geometry, policy, seed=SEED, kernel_jobs=4
            )
            assert sharded == serial
            assert "+threads" not in sharded.backend

    DUELING_GEOMETRY = CacheGeometry(128 * 4 * 64, 4)  # 64 followers

    @pytest.mark.parametrize("policy", ("dip", "drrip"))
    def test_dueling_follower_sharding_bit_identity(self, policy):
        # With followers present (128 sets -> 64), the follower phase
        # shards across kernel_jobs threads after the serial leader pass
        # and PSEL reconstruction; results must match the serial replay
        # exactly and stamp the thread count that actually ran.
        stream = mixed_stream(6000, 900)
        serial = run_policy_on_stream(
            stream, self.DUELING_GEOMETRY, policy, seed=SEED
        )
        assert "+threads" not in serial.backend
        for jobs in (2, 8):
            sharded = run_policy_on_stream(
                stream, self.DUELING_GEOMETRY, policy, seed=SEED,
                kernel_jobs=jobs,
            )
            assert sharded == serial, (policy, jobs)
            assert sharded.backend.endswith(f"+threads{jobs}")

    def test_dueling_effective_thread_count_is_stamped(self):
        # Requesting more jobs than there are followers must stamp the
        # follower count actually sharded over, not the request.
        stream = mixed_stream(3000, 500)
        serial = run_policy_on_stream(
            stream, self.DUELING_GEOMETRY, "drrip", seed=SEED
        )
        sharded = run_policy_on_stream(
            stream, self.DUELING_GEOMETRY, "drrip", seed=SEED,
            kernel_jobs=200,
        )
        assert sharded == serial
        assert sharded.backend.endswith("+threads64")

    def test_dueling_sharded_profile_records_threads(self):
        stream = mixed_stream(2000, 400)
        profile = {}
        replay_setpath(
            stream, self.DUELING_GEOMETRY, make_policy("drrip", seed=9),
            kernel_jobs=2, profile=profile,
        )
        assert profile["kernel_threads"] == 2

    def test_env_default_shards(self, monkeypatch):
        stream = mixed_stream(2000, 90)
        geometry = CacheGeometry(8 * 4 * 64, 4)
        serial = run_policy_on_stream(stream, geometry, "srrip", seed=SEED)
        monkeypatch.setenv(KERNEL_JOBS_ENV, "2")
        sharded = run_policy_on_stream(stream, geometry, "srrip", seed=SEED)
        assert sharded == serial
        assert sharded.backend.endswith("+threads2")

    def test_single_set_geometry_stays_serial(self):
        stream = mixed_stream(600, 40)
        geometry = CacheGeometry(1 * 4 * 64, 4)
        result = run_policy_on_stream(
            stream, geometry, "srrip", seed=SEED, kernel_jobs=4
        )
        assert "+threads" not in result.backend
        assert result == run_policy_on_stream(
            stream, geometry, "srrip", seed=SEED
        )

    def test_sharded_instance_replay(self):
        # replay_setpath's own kernel_jobs knob, with a stochastic policy:
        # per-set RNG streams are pre-created serially, then shards draw
        # from them without interleaving hazards.
        stream = mixed_stream(3000, 120)
        geometry = CacheGeometry(16 * 4 * 64, 4)
        serial = replay_setpath(
            stream, geometry, make_policy("brrip", seed=9)
        )
        sharded = replay_setpath(
            stream, geometry, make_policy("brrip", seed=9), kernel_jobs=4
        )
        assert sharded == serial

    @settings(max_examples=25, deadline=None)
    @given(accesses=accesses_strategy)
    def test_hypothesis_sharded_streams(self, accesses):
        stream = make_stream(accesses)
        geometry = CacheGeometry(4 * 2 * 64, 2)
        for policy in ("srrip", "random"):
            serial = run_policy_on_stream(stream, geometry, policy, seed=3)
            sharded = run_policy_on_stream(
                stream, geometry, policy, seed=3, kernel_jobs=4
            )
            assert sharded == serial
