"""Differential tests for the microarchitectural probe layer.

The load-bearing properties, per DESIGN.md decision 8:

* **Tier equivalence** — every ``fastpath_safe`` probe produces a
  bit-identical summary whether the replay ran through the scalar cache
  model or the exact stack-distance LRU fast path.
* **Never silently degrade** — one scalar-only probe forces the whole
  replay onto the scalar tier, and the report says which tier ran.
* **Observation only** — a probed replay returns exactly the hit/miss
  counts of the un-probed :func:`run_policy_on_stream` twin (same seed
  derivation), and an un-probed ``SharedLlc`` carries no instrumentation
  at all (the hook is an instance-attribute shadow, absent by default).
* **The sharing probe IS the characterization** — its summary reproduces
  ``context.characterize()``'s breakdown field-for-field.
"""

import dataclasses
import json
import pickle
import random

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.sim.engine import LlcOnlySimulator
from repro.sim.experiment import ExperimentContext
from repro.sim.multipass import run_policy_on_stream
from repro.sim.parallel import inspect_many
from repro.sim.probes import (
    PROBE_FORMAT_VERSION,
    PROBE_NAMES,
    Probe,
    ProbeBus,
    default_probe_names,
    inspect_workload,
    make_probe,
    resolve_probes,
    run_probed_replay,
)
from repro.policies.lru import LruPolicy
from tests.conftest import make_stream

FASTPATH_SAFE = ("sets", "evictions", "sharing", "reuse")


def mixed_stream(n=4000, cores=4, blocks=96, writes=0.25, seed=7):
    """A deterministic multi-core stream with real sharing and evictions."""
    rng = random.Random(seed)
    accesses = [
        (
            rng.randrange(cores),
            0x400 + 8 * rng.randrange(16),
            rng.randrange(blocks),
            rng.random() < writes,
        )
        for __ in range(n)
    ]
    return make_stream(accesses, name="mixed")


@pytest.fixture
def stream():
    return mixed_stream()


@pytest.fixture
def context(tiny_machine):
    return ExperimentContext(
        tiny_machine, target_accesses=3_000, seed=11,
        workloads=["swaptions", "water"],
    )


class CountingProbe(Probe):
    """Scalar-only access counter: exercises tier forcing and the bus."""

    name = "counting"
    fastpath_safe = False
    wants_access_events = True

    def __init__(self):
        self.accesses = 0
        self.hits = 0

    def on_access(self, llc, core, pc, block, is_write, hit, evicted):
        self.accesses += 1
        self.hits += hit

    def summary(self):
        return {"accesses": self.accesses, "hits": self.hits}


class TestTierEquivalence:
    @pytest.mark.parametrize("name", FASTPATH_SAFE)
    def test_probe_summary_bit_identical_across_tiers(
        self, stream, small_geometry, name
    ):
        fast = run_probed_replay(
            stream, small_geometry, "lru", [name], fastpath=True
        )
        scalar = run_probed_replay(
            stream, small_geometry, "lru", [name], fastpath=False
        )
        assert fast.tier == "stack"
        assert scalar.tier == "scalar"
        assert fast.probes[name] == scalar.probes[name]
        assert (fast.result.hits, fast.result.misses) == (
            scalar.result.hits, scalar.result.misses
        )

    def test_all_safe_probes_together_across_geometries(self, stream):
        for geometry in (
            CacheGeometry(4 * 2 * 64, 2),
            CacheGeometry(2 * 4 * 64, 4),
            CacheGeometry(8 * 8 * 64, 8),
        ):
            fast = run_probed_replay(
                stream, geometry, "lru", list(FASTPATH_SAFE), fastpath=True
            )
            scalar = run_probed_replay(
                stream, geometry, "lru", list(FASTPATH_SAFE), fastpath=False
            )
            assert fast.probes == scalar.probes

    def test_unsafe_probe_forces_scalar_tier(self, stream, small_geometry):
        probe = CountingProbe()
        report = run_probed_replay(
            stream, small_geometry, "lru", [probe], fastpath=True
        )
        assert report.tier == "scalar"
        # ... and the bus actually delivered every access to it.
        assert probe.accesses == len(stream)
        assert probe.hits == report.result.hits
        assert report.probes["counting"]["accesses"] == len(stream)

    def test_safe_probes_take_fastpath_by_default(
        self, stream, small_geometry, monkeypatch
    ):
        from repro.sim.fastpath import FASTPATH_ENV

        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        report = run_probed_replay(
            stream, small_geometry, "lru", list(FASTPATH_SAFE)
        )
        assert report.tier == "stack"


class TestObservationOnly:
    @pytest.mark.parametrize("policy", ["lru", "srrip", "random", "dip"])
    def test_probed_replay_matches_unprobed_counts(
        self, stream, small_geometry, policy
    ):
        probes = ["sets", "evictions", "sharing", "reuse"]
        probed = run_probed_replay(
            stream, small_geometry, policy, probes, seed=13, fastpath=False
        )
        plain = run_policy_on_stream(
            stream, small_geometry, policy, seed=13, fastpath=False
        )
        assert (probed.result.hits, probed.result.misses) == (
            plain.hits, plain.misses
        )

    def test_unprobed_llc_carries_no_instrumentation(self, small_geometry):
        simulator = LlcOnlySimulator(small_geometry, LruPolicy())
        assert "access" not in vars(simulator.llc)
        simulator.llc.attach_probe_bus(ProbeBus([CountingProbe()]))
        assert "access" in vars(simulator.llc)

    def test_scalar_report_carries_policy_state(
        self, stream, small_geometry
    ):
        report = run_probed_replay(
            stream, small_geometry, "dip", ["sets"], fastpath=False
        )
        assert report.policy_state is not None
        assert report.policy_state["policy"] == "dip"

    def test_profile_attributes_replay_stages(self, stream, small_geometry):
        fast = run_probed_replay(
            stream, small_geometry, "lru", ["reuse"], fastpath=True
        )
        assert "stack_walk" in fast.profile
        assert "probe_reuse" in fast.profile
        assert fast.profile["total"] >= 0
        scalar = run_probed_replay(
            stream, small_geometry, "lru", ["reuse"], fastpath=False
        )
        assert "replay_loop" in scalar.profile
        assert "finalize" in scalar.profile


class TestPolicyInternalProbes:
    def test_psel_samples_dueling_counter(self, stream, small_geometry):
        probe = make_probe("psel", sample_every=256)
        report = run_probed_replay(
            stream, small_geometry, "dip", [probe], fastpath=False
        )
        summary = report.probes["psel"]
        assert summary["sample_every"] == 256
        assert len(summary["samples"]) == len(stream) // 256
        assert summary["final"]["psel"] >= 0
        for seen, psel in summary["samples"]:
            assert 0 <= psel <= probe._duel.psel_max

    def test_psel_rejects_non_dueling_policy(self, stream, small_geometry):
        with pytest.raises(ConfigError, match="set-dueling"):
            run_probed_replay(
                stream, small_geometry, "lru", ["psel"], fastpath=False
            )

    def test_shct_samples_ship_table(self, stream, small_geometry):
        probe = make_probe("shct", sample_every=512)
        report = run_probed_replay(
            stream, small_geometry, "ship", [probe], fastpath=False
        )
        summary = report.probes["shct"]
        assert summary["shct_size"] > 0
        assert sum(summary["final_histogram"].values()) == summary["shct_size"]
        assert len(summary["samples"]) == len(stream) // 512

    def test_shct_rejects_non_ship_policy(self, stream, small_geometry):
        with pytest.raises(ConfigError, match="SHiP"):
            run_probed_replay(
                stream, small_geometry, "srrip", ["shct"], fastpath=False
            )

    def test_rrpv_snapshots_victim_sets(self, stream, small_geometry):
        report = run_probed_replay(
            stream, small_geometry, "srrip", ["rrpv"], fastpath=False
        )
        summary = report.probes["rrpv"]
        assert summary["evictions_sampled"] > 0
        # Every eviction snapshots the full (just refilled) victim set.
        assert (
            sum(summary["histogram"].values())
            == summary["evictions_sampled"] * small_geometry.ways
        )
        assert all(
            0 <= int(v) <= summary["rrpv_max"] for v in summary["histogram"]
        )

    def test_rrpv_rejects_non_rrip_policy(self, stream, small_geometry):
        with pytest.raises(ConfigError, match="RRIP"):
            run_probed_replay(
                stream, small_geometry, "lru", ["rrpv"], fastpath=False
            )


class TestRegistry:
    def test_unknown_probe_rejected(self):
        with pytest.raises(ConfigError, match="unknown probe"):
            make_probe("voltage")

    def test_duplicate_probe_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            resolve_probes(["sets", "sharing", "sets"])

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ConfigError, match="sample_every"):
            make_probe("psel", sample_every=0)

    def test_hierarchy_probe_rejected_by_replay_runner(
        self, stream, small_geometry
    ):
        with pytest.raises(ConfigError, match="hierarchy"):
            run_probed_replay(stream, small_geometry, "lru", ["coherence"])

    def test_default_probe_names_track_policy_state(self):
        base = {"sets", "evictions", "sharing", "reuse", "coherence"}
        assert set(default_probe_names("lru")) == base
        assert set(default_probe_names("drrip")) == base | {"psel", "rrpv"}
        assert set(default_probe_names("ship")) == base | {"shct", "rrpv"}
        for policy in ("lru", "dip", "drrip", "srrip", "ship"):
            names = default_probe_names(policy)
            assert set(names) <= set(PROBE_NAMES)
            assert len(names) == len(set(names))


class TestInspectWorkload:
    def test_sharing_probe_reproduces_characterization(self, context):
        """Acceptance: the paper-style breakdown from probe data alone."""
        report = inspect_workload(context, "water", probes=["sharing"])
        char = context.characterize("water")
        summary = report.probes["sharing"]
        for field, value in dataclasses.asdict(char.breakdown).items():
            if field in ("degree_residencies", "degree_hits"):
                value = {str(k): v for k, v in sorted(value.items())}
            assert summary[field] == value, field
        assert report.result.hits == char.result.hits
        assert report.result.misses == char.result.misses

    def test_coherence_probe_matches_hierarchy_stats(self, context):
        report = inspect_workload(context, "water", probes=["coherence"])
        events = report.probes["coherence"]["events"]
        stats = report.hierarchy
        assert events.get("upgrade", 0) == stats["upgrades"]
        assert events.get("invalidation", 0) == stats["invalidations"]
        assert events.get("writeback", 0) == stats["writebacks"]
        assert events.get("inclusion_victim", 0) == stats["inclusion_victims"]
        per_core = report.probes["coherence"]["per_core"]
        for kind, cores in per_core.items():
            assert sum(cores) == events[kind]
        assert "hierarchy_pass" in report.profile

    def test_default_inspection_is_json_and_pickle_clean(self, context):
        report = inspect_workload(context, "swaptions")
        payload = report.as_dict()
        assert payload["format_version"] == PROBE_FORMAT_VERSION
        decoded = json.loads(json.dumps(payload))
        assert decoded["workload"] == "swaptions"
        assert set(decoded["probes"]) == set(default_probe_names("lru"))
        clone = pickle.loads(pickle.dumps(report))
        assert clone.probes == report.probes
        assert clone.as_dict() == payload


class TestParallelInspect:
    def test_parallel_matches_serial(self, context, tiny_machine):
        serial = inspect_many(context, ["swaptions", "water"], jobs=1)
        fresh = ExperimentContext(
            tiny_machine, target_accesses=3_000, seed=11,
            workloads=["swaptions", "water"],
        )
        parallel = inspect_many(fresh, ["swaptions", "water"], jobs=2)
        assert set(serial) == set(parallel)
        for name in serial:
            a, b = serial[name], parallel[name]
            assert a.tier == b.tier
            assert a.probes == b.probes
            assert (a.result.hits, a.result.misses) == (
                b.result.hits, b.result.misses
            )


class TestCliInspect:
    FAST = ["--accesses", "3000", "--workloads", "swaptions"]

    def test_inspect_renders_and_persists_report(self, capsys, tmp_path):
        from repro.cli import main
        from repro.sim import telemetry

        cache = str(tmp_path / "cache")
        assert main(["inspect", *self.FAST, "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "probe report: workload swaptions" in out
        assert "sharing breakdown" in out
        assert "hottest sets" in out
        root = telemetry.resolve_runs_root(cache_dir=cache)
        runs = telemetry.list_runs(root)
        assert len(runs) == 1
        payload_path = runs[0].path / "inspect_swaptions.json"
        payload = json.loads(payload_path.read_text())
        assert payload["format_version"] == PROBE_FORMAT_VERSION
        assert payload["probes"]["sharing"]["shared_hits"] >= 0

        # `runs show` re-renders the persisted report from disk.
        assert main(["runs", "show", runs[0].run_id,
                     "--cache-dir", cache]) == 0
        assert "probe report: workload swaptions" in capsys.readouterr().out

    def test_runs_show_warns_on_corrupt_probe_payload(
        self, capsys, tmp_path
    ):
        from repro.cli import main
        from repro.sim import telemetry

        cache = str(tmp_path / "cache")
        assert main(["inspect", *self.FAST, "--cache-dir", cache]) == 0
        capsys.readouterr()
        runs = telemetry.list_runs(
            telemetry.resolve_runs_root(cache_dir=cache)
        )
        (runs[0].path / "inspect_swaptions.json").write_text("{broken")
        assert main(["runs", "show", runs[0].run_id,
                     "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "Traceback" not in captured.err
        assert "probe report" not in captured.out

    def test_inspect_rejects_incompatible_probe(self, capsys, tmp_path):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        # Graceful mode reports the failed cell and keeps going...
        assert main(["inspect", *self.FAST, "--policy", "lru",
                     "--probes", "psel", "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "set-dueling" in captured.err
        assert "probe report" not in captured.out
        # ...while --fail-fast surfaces the ConfigError as a hard error.
        assert main(["inspect", *self.FAST, "--policy", "lru",
                     "--probes", "psel", "--fail-fast", "--retries", "0",
                     "--cache-dir", cache]) == 2
        assert "set-dueling" in capsys.readouterr().err

    def test_inspect_policy_probes_render(self, capsys, tmp_path):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        assert main(["inspect", *self.FAST, "--policy", "drrip",
                     "--probes", "psel", "rrpv",
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "tier scalar" in out
        assert "PSEL" in out
        assert "rrpv" in out
