"""Tests for the parallel experiment engine.

The load-bearing property is *bit-identity*: fanning the experiment matrix
out over worker processes must return exactly the records the serial path
produces — same miss counts, same stats, same ordering — because the
parallel path is a pure scheduling change layered on deterministic cells.
"""

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.sim.experiment import ExperimentContext
from repro.sim.parallel import (
    DEFAULT_JOBS_ENV,
    ExperimentCell,
    compare_many,
    execute_cell,
    jobs_from_env,
    normalize_jobs,
    oracle_many,
    predict_many,
    run_cells,
    scaled_geometry,
    sweep_many,
)

WORKLOADS = ["swaptions", "water", "fft", "radix"]


@pytest.fixture
def context(tiny_machine):
    return ExperimentContext(
        tiny_machine, target_accesses=3_000, seed=11, workloads=WORKLOADS
    )


def fresh_context(machine):
    """A context with cold caches (each run must recompute from scratch)."""
    return ExperimentContext(
        machine, target_accesses=3_000, seed=11, workloads=WORKLOADS
    )


class TestJobsPlumbing:
    def test_normalize_explicit(self):
        assert normalize_jobs(3) == 3
        assert normalize_jobs(1) == 1

    def test_normalize_auto(self):
        import os

        expected = os.cpu_count() or 1
        assert normalize_jobs(None) == expected
        assert normalize_jobs(0) == expected

    def test_normalize_rejects_negative(self):
        with pytest.raises(ConfigError):
            normalize_jobs(-2)

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_JOBS_ENV, raising=False)
        assert jobs_from_env(default=1) == 1
        monkeypatch.setenv(DEFAULT_JOBS_ENV, "4")
        assert jobs_from_env(default=1) == 4
        monkeypatch.setenv(DEFAULT_JOBS_ENV, "banana")
        with pytest.raises(ConfigError):
            jobs_from_env()


class TestScaledGeometry:
    def test_halving_and_doubling(self):
        base = CacheGeometry(4096, 8)  # 64 blocks
        assert scaled_geometry(base, 0.5).num_blocks == 32
        assert scaled_geometry(base, 2.0).num_blocks == 128
        assert scaled_geometry(base, 1.0) == base

    def test_preserves_ways_and_block_size(self):
        base = CacheGeometry(4096, 8, block_bytes=64)
        scaled = scaled_geometry(base, 4.0)
        assert scaled.ways == base.ways
        assert scaled.block_bytes == base.block_bytes

    def test_fractional_factors_snap_to_valid_geometry(self):
        base = CacheGeometry(256 * 8 * 64, 8)  # 256 sets
        # 0.3 * 256 = 76.8 -> nearest power of two is 64.
        assert scaled_geometry(base, 0.3).num_sets == 64
        # 0.75 * 256 = 192, equidistant from 128 and 256: ties round up.
        assert scaled_geometry(base, 0.75).num_sets == 256
        # Every snapped result satisfies the CacheGeometry invariants.
        for factor in (0.1, 0.3, 0.6, 0.75, 1.3, 3.0):
            scaled = scaled_geometry(base, factor)
            assert scaled.num_sets & (scaled.num_sets - 1) == 0

    def test_tiny_factor_floors_at_one_set(self):
        base = CacheGeometry(4 * 2 * 64, 2)  # 4 sets
        assert scaled_geometry(base, 0.01).num_sets == 1

    def test_invalid_factors_rejected(self):
        base = CacheGeometry(4096, 8)
        for bad in (0, -0.5, float("nan"), float("inf"), "2", None, True):
            with pytest.raises(ConfigError):
                scaled_geometry(base, bad)


class TestExecuteCell:
    def test_unknown_kind_rejected(self, context):
        with pytest.raises(ConfigError):
            execute_cell(context, ExperimentCell("frobnicate", "water"))

    def test_record_cell_returns_artifacts(self, context):
        name, artifacts = execute_cell(context, ExperimentCell("record", "water"))
        assert name == "water"
        assert artifacts.workload == "water"

    def test_serial_run_cells_preserves_order(self, context):
        cells = [ExperimentCell("record", name) for name in WORKLOADS]
        results = run_cells(context, cells, jobs=1)
        assert [name for name, __ in results] == WORKLOADS


class TestSerialParallelIdentity:
    """Same seeds => bit-identical results across --jobs 1 and --jobs 4."""

    def test_compare_bit_identical(self, tiny_machine):
        serial = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru", "srrip"],
            include_opt=True, jobs=1,
        )
        parallel = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru", "srrip"],
            include_opt=True, jobs=4,
        )
        assert serial == parallel  # PolicyComparison compares every stat
        for name in WORKLOADS:
            assert serial[name].results["lru"].misses \
                == parallel[name].results["lru"].misses

    def test_oracle_bit_identical(self, tiny_machine):
        serial = oracle_many(
            fresh_context(tiny_machine), WORKLOADS[:2], jobs=1
        )
        parallel = oracle_many(
            fresh_context(tiny_machine), WORKLOADS[:2], jobs=4
        )
        assert serial == parallel

    def test_sweep_bit_identical_and_keyed(self, tiny_machine):
        factors = (0.5, 1.0, 2.0)
        serial = sweep_many(
            fresh_context(tiny_machine), WORKLOADS[:2], factors, jobs=1
        )
        parallel = sweep_many(
            fresh_context(tiny_machine), WORKLOADS[:2], factors, jobs=4
        )
        assert list(serial) == [
            (factor, name) for factor in factors for name in WORKLOADS[:2]
        ]
        assert serial == parallel

    def test_predict_bit_identical(self, tiny_machine):
        serial = predict_many(
            fresh_context(tiny_machine), WORKLOADS[:2], ["address", "pc"],
            jobs=1,
        )
        parallel = predict_many(
            fresh_context(tiny_machine), WORKLOADS[:2], ["address", "pc"],
            jobs=4,
        )
        assert serial == parallel


class TestPrefetch:
    def test_parallel_prefetch_fills_memory_cache(self, context):
        context.prefetch(jobs=2)
        assert set(context.cached_workloads()) == set(WORKLOADS)
        # Artifacts shipped back from workers must equal a local recording.
        local = fresh_context(context.machine).artifacts("water")
        shipped = context.artifacts("water")
        assert list(shipped.stream.blocks) == list(local.stream.blocks)
        assert shipped.hierarchy_stats == local.hierarchy_stats
