"""Fault tolerance of the parallel experiment engine.

Strict mode (``fail_fast=True``) must behave exactly like the engine
always did: first error aborts. Graceful mode must (a) retry failing
cells, (b) survive worker-process *death* — which breaks the whole
process pool — by rebuilding the pool, (c) enforce per-cell deadlines,
and (d) complete with :class:`CellFailure` placeholders instead of
aborting, with every non-failed cell still bit-identical to a serial run.

Failures are provoked through the ``REPRO_SIM_FAULT_INJECT`` hook, the
same hook the acceptance criterion's forced-crash sweep uses.
"""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.sim.experiment import ExperimentContext
from repro.sim.parallel import (
    FAULT_ENV,
    FAULT_STATE_ENV,
    MAX_BACKOFF,
    CellTimeoutError,
    ExperimentCell,
    compare_many,
    oracle_many,
    retry_delay,
    run_cells,
    sweep_many,
)
from repro.sim.results import CellFailure, is_failure, split_failures

WORKLOADS = ["swaptions", "water", "fft"]


def fresh_context(machine):
    return ExperimentContext(
        machine, target_accesses=3_000, seed=11, workloads=WORKLOADS
    )


@pytest.fixture
def context(tiny_machine):
    return fresh_context(tiny_machine)


class TestValidation:
    def test_bad_timeout_rejected(self, context):
        with pytest.raises(ConfigError):
            run_cells(context, [], timeout=0)
        with pytest.raises(ConfigError):
            run_cells(context, [], timeout=-1.0)

    def test_bad_retries_rejected(self, context):
        with pytest.raises(ConfigError):
            run_cells(context, [], retries=-1)

    def test_bad_fault_specs_rejected(self, context, monkeypatch):
        cell = ExperimentCell("compare", "water", ((("lru",), False)))
        monkeypatch.setenv(FAULT_ENV, "not-a-spec")
        with pytest.raises(ConfigError):
            run_cells(context, [cell])
        monkeypatch.setenv(FAULT_ENV, "compare:water:frobnicate")
        with pytest.raises(ConfigError):
            run_cells(context, [cell])

    def test_nonpositive_target_accesses_rejected(self, tiny_machine):
        with pytest.raises(ConfigError):
            ExperimentContext(tiny_machine, target_accesses=0)
        with pytest.raises(ConfigError):
            ExperimentContext(tiny_machine, target_accesses=-5)
        with pytest.raises(ConfigError):
            ExperimentContext(tiny_machine, seed=-1)


class TestBackoffCap:
    def test_retry_delay_doubles_then_caps(self):
        # Uncapped, backoff * 2**(attempts-1) reaches an hour by attempt
        # 14 of a 0.25s base — a "retry budget" that silently turns into
        # a hang. The ceiling bounds every single delay.
        assert retry_delay(0.25, 1) == 0.25
        assert retry_delay(0.25, 2) == 0.5
        assert retry_delay(0.25, 3) == 1.0
        assert retry_delay(0.25, 8) == MAX_BACKOFF
        assert retry_delay(0.25, 60) == MAX_BACKOFF
        assert retry_delay(1e9, 1) == MAX_BACKOFF
        assert retry_delay(0.0, 5) == 0.0
        assert MAX_BACKOFF == 30.0

    def test_serial_retry_sleeps_are_capped(self, context, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.sim.parallel.time.sleep", lambda s: sleeps.append(s)
        )
        monkeypatch.setenv(FAULT_ENV, "oracle:water:raise")
        studies = oracle_many(
            context, ["water"], jobs=1,
            fail_fast=False, retries=6, backoff=1e6,
        )
        assert studies["water"].attempts == 7
        assert len(sleeps) == 6  # one delay per retry, none after the last
        assert all(s <= MAX_BACKOFF for s in sleeps)
        assert max(sleeps) == MAX_BACKOFF  # the cap actually engaged

    def test_pool_retry_deadlines_are_capped(self, tiny_machine, monkeypatch):
        # The pool path spaces retries through not_before deadlines rather
        # than sleeping inline; a pathological backoff must still let the
        # sweep finish promptly instead of parking the cell for minutes.
        # The retry scheduling runs in the parent process, so shrinking the
        # ceiling there keeps the test fast while exercising the same
        # min(..., MAX_BACKOFF) the production 30s ceiling uses.
        import time as _time

        monkeypatch.setattr("repro.sim.parallel.MAX_BACKOFF", 0.5)
        monkeypatch.setenv(FAULT_ENV, "compare:water:raise")
        start = _time.monotonic()
        results = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru"],
            jobs=2, fail_fast=False, retries=1, backoff=1e6,
        )
        elapsed = _time.monotonic() - start
        assert is_failure(results["water"])
        assert results["water"].attempts == 2
        # An uncapped 1e6s backoff would park the cell for 11 days; with
        # the ceiling engaged the sweep returns in pool-overhead time.
        assert elapsed < 60.0


class TestSerialGraceful:
    def test_fail_fast_raises_exactly_like_before(self, context, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "oracle:water:raise")
        with pytest.raises(SimulationError):
            oracle_many(context, WORKLOADS, jobs=1)  # default fail_fast

    def test_failed_cell_becomes_placeholder(self, context, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "oracle:water:raise")
        studies = oracle_many(
            context, WORKLOADS, jobs=1,
            fail_fast=False, retries=0, backoff=0.0,
        )
        assert is_failure(studies["water"])
        failure = studies["water"]
        assert failure.kind == "oracle"
        assert failure.workload == "water"
        assert failure.error_type == "SimulationError"
        assert failure.attempts == 1
        ok, failed = split_failures(studies)
        assert set(ok) == {"swaptions", "fft"}
        assert [f.workload for f in failed] == ["water"]

    def test_retry_budget_counts_attempts(self, context, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "oracle:water:raise")
        studies = oracle_many(
            context, WORKLOADS, jobs=1,
            fail_fast=False, retries=2, backoff=0.0,
        )
        assert studies["water"].attempts == 3  # initial + 2 retries

    def test_flaky_cell_recovers_on_retry(self, context, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "oracle:water:flaky")
        monkeypatch.setenv(FAULT_STATE_ENV, str(tmp_path))
        studies = oracle_many(
            context, WORKLOADS, jobs=1,
            fail_fast=False, retries=1, backoff=0.0,
        )
        assert not any(is_failure(study) for study in studies.values())
        # Without a retry budget the same flake is terminal.
        assert (tmp_path / "fired-oracle-water").exists()

    def test_flaky_without_state_dir_rejected(self, context, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "oracle:water:flaky")
        monkeypatch.delenv(FAULT_STATE_ENV, raising=False)
        studies = oracle_many(
            context, WORKLOADS[:2], jobs=1,
            fail_fast=False, retries=0, backoff=0.0,
        )
        assert studies["water"].error_type == "ConfigError"

    def test_partial_results_match_serial_bits(self, tiny_machine, monkeypatch):
        clean = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru", "srrip"], jobs=1
        )
        monkeypatch.setenv(FAULT_ENV, "compare:fft:raise")
        partial = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru", "srrip"],
            jobs=1, fail_fast=False, retries=0, backoff=0.0,
        )
        assert is_failure(partial["fft"])
        for name in ("swaptions", "water"):
            assert partial[name] == clean[name]


class TestParallelGraceful:
    def test_worker_crash_yields_partial_results(self, tiny_machine, monkeypatch):
        """The acceptance scenario: one cell's worker dies via os._exit
        (breaking the ProcessPoolExecutor); the sweep still completes and
        only that cell is marked failed."""
        clean = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru"], jobs=1
        )
        monkeypatch.setenv(FAULT_ENV, "compare:water:exit")
        results = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru"],
            jobs=2, fail_fast=False, retries=3, backoff=0.01,
        )
        assert len(results) == len(WORKLOADS)
        assert is_failure(results["water"])
        assert results["water"].error_type == "SimulationError"
        # Collateral pool-mates may be charged attempts, but with a
        # 3-retry budget at least the crash-free cells must land, and
        # everything that landed must be bit-identical to the serial run.
        survivors = {name: result for name, result in results.items()
                     if not is_failure(result)}
        assert survivors  # the sweep was not wiped out by one bad cell
        for name, result in survivors.items():
            assert result == clean[name]

    def test_worker_crash_fail_fast_aborts(self, tiny_machine, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compare:water:exit")
        with pytest.raises(SimulationError, match="worker process died"):
            compare_many(
                fresh_context(tiny_machine), WORKLOADS, ["lru"],
                jobs=2, fail_fast=True,
            )

    def test_raise_in_worker_is_retried_not_fatal(self, tiny_machine, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "sweep_grid:fft:raise")
        studies = sweep_many(
            fresh_context(tiny_machine), WORKLOADS, (0.5, 1.0),
            jobs=2, fail_fast=False, retries=0, backoff=0.0,
        )
        assert len(studies) == 2 * len(WORKLOADS)
        for (factor, name), study in studies.items():
            assert is_failure(study) == (name == "fft")

    def test_cell_timeout_marks_failure(self, tiny_machine, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "compare:water:hang")
        results = compare_many(
            fresh_context(tiny_machine), WORKLOADS, ["lru"],
            jobs=2, fail_fast=False, retries=0, timeout=2.0, backoff=0.0,
        )
        assert is_failure(results["water"])
        assert results["water"].error_type == "CellTimeoutError"
        assert "deadline" in results["water"].error
        assert not is_failure(results["swaptions"])
        assert not is_failure(results["fft"])

    def test_failure_placeholder_serialisable(self):
        failure = CellFailure("compare", "water", (1, 2), "ValueError",
                              "boom", 2)
        view = failure.as_dict()
        assert view["kind"] == "compare"
        assert view["attempts"] == 2
        assert CellTimeoutError.__mro__  # exported, SimulationError subclass
        assert issubclass(CellTimeoutError, SimulationError)
