"""Experiment-store suite: schema, ingest, queries, live sink, tail, CLI.

The load-bearing contracts:

* **lossless** — ``db export`` returns the manifest byte-identical to the
  file the telemetry layer wrote, including for corrupt manifests;
* **idempotent** — a second ingest of an unchanged root is a no-op;
* **tolerant** — SIGKILL-torn event logs and garbage lines are dropped,
  never fatal (hypothesis drives the damage via
  :func:`tests.strategies.event_log_corruptions`);
* **live == post-hoc** — a run mirrored by :class:`LiveDbWriter` ends in
  the same database state a later ``db ingest`` would produce;
* **exact trajectory** — ``db regressions`` recomputes every committed
  ``BENCH_<rev>.json`` ``vs_previous.golden_speedup`` bit-for-bit from
  the stored baselines, and exits nonzero on a planted regression.
"""

import io
import json
import sqlite3
from pathlib import Path

import pytest
from hypothesis import given

from repro.cli import main
from repro.common.errors import ConfigError
from repro.common.stats import ratio
from repro.sim import telemetry
from repro.sim.expdb import (
    INGESTED,
    SKIPPED,
    UNCHANGED,
    UPDATED,
    LiveDbWriter,
    bench_regressions,
    connect,
    export_manifest,
    get_run,
    ingest_bench_dir,
    ingest_bench_file,
    ingest_run_dir,
    ingest_runs_root,
    list_experiments,
    query_runs,
    reconstruct_invocation,
    resolve_db_path,
    run_detail,
    run_regressions,
)
from repro.sim.expdb.schema import DB_ENV, DB_FILENAME, SCHEMA_VERSION
from repro.sim.expdb.tail import tail_run
from tests.strategies import (
    event_log_corruptions,
    run_manifests,
    telemetry_events,
)

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

FAST = ["--accesses", "3000", "--workloads", "swaptions"]


def make_run_dir(root, run_id, manifest, events=(), raw_manifest=None):
    """Lay a run directory down the way the telemetry writer would."""
    run_dir = Path(root) / run_id
    run_dir.mkdir(parents=True)
    text = raw_manifest if raw_manifest is not None else (
        json.dumps(manifest, indent=2, sort_keys=False) + "\n"
    )
    (run_dir / telemetry.MANIFEST_NAME).write_text(text, encoding="utf-8")
    if events:
        lines = "".join(json.dumps(e) + "\n" for e in events)
        (run_dir / telemetry.EVENTS_NAME).write_text(lines,
                                                     encoding="utf-8")
    return run_dir


@pytest.fixture
def db(tmp_path):
    conn = connect(tmp_path / "store.sqlite3")
    yield conn
    conn.close()


class TestSchema:
    def test_connect_creates_wal_schema(self, tmp_path, db):
        assert db.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        tables = {row[0] for row in db.execute(
            "SELECT name FROM sqlite_master WHERE type='table'")}
        assert {"meta", "experiments", "runs", "cells", "spans", "events",
                "probe_summaries", "bench_files",
                "bench_samples"} <= tables

    def test_connect_without_create_requires_file(self, tmp_path):
        with pytest.raises(ConfigError, match="no experiment database"):
            connect(tmp_path / "missing.sqlite3", create=False)

    def test_future_schema_warns_but_proceeds(self, tmp_path):
        path = tmp_path / "future.sqlite3"
        conn = connect(path)
        conn.execute("UPDATE meta SET value = ? WHERE key = "
                     "'schema_version'", (str(SCHEMA_VERSION + 5),))
        conn.commit()
        conn.close()
        warnings = []
        conn = connect(path, create=False, on_warning=warnings.append)
        conn.close()
        assert len(warnings) == 1
        assert "newer than this reader" in warnings[0]

    def test_resolve_db_path_spec_semantics(self, tmp_path, monkeypatch):
        monkeypatch.delenv(DB_ENV, raising=False)
        assert resolve_db_path(None, tmp_path) is None
        assert resolve_db_path("off", tmp_path) is None
        assert resolve_db_path("0", tmp_path) is None
        assert resolve_db_path("auto", tmp_path) == tmp_path / DB_FILENAME
        literal = tmp_path / "elsewhere.sqlite3"
        assert resolve_db_path(str(literal), tmp_path) == literal
        monkeypatch.setenv(DB_ENV, "auto")
        assert resolve_db_path(None, tmp_path) == tmp_path / DB_FILENAME
        monkeypatch.setenv(DB_ENV, "off")
        assert resolve_db_path(None, tmp_path) is None


class TestIngest:
    @given(manifest=run_manifests(), events=telemetry_events())
    def test_ingest_is_idempotent_and_lossless(self, tmp_path_factory,
                                               manifest, events):
        root = tmp_path_factory.mktemp("root")
        run_dir = make_run_dir(root, "20260101T000000-p1", manifest,
                               events)
        conn = connect(root / "db.sqlite3")
        try:
            assert ingest_run_dir(conn, run_dir, root=root) == INGESTED
            # Round trip: the stored manifest is the file, byte for byte.
            source = (run_dir / telemetry.MANIFEST_NAME).read_text(
                encoding="utf-8")
            assert export_manifest(conn, run_dir.name) == source
            # Idempotency: an unchanged run is a no-op.
            assert ingest_run_dir(conn, run_dir, root=root) == UNCHANGED
            stored = conn.execute(
                "SELECT payload FROM events WHERE run_id = ?"
                " ORDER BY seq", (run_dir.name,)).fetchall()
            assert [json.loads(row[0]) for row in stored] == list(events)
        finally:
            conn.close()

    @given(manifest=run_manifests(),
           events=telemetry_events(min_size=1),
           corruption=event_log_corruptions())
    def test_corrupt_event_logs_never_fail(self, tmp_path_factory,
                                           manifest, events, corruption):
        root = tmp_path_factory.mktemp("root")
        run_dir = make_run_dir(root, "20260101T000000-p1", manifest,
                               events)
        events_path = run_dir / telemetry.EVENTS_NAME
        kind, payload = corruption
        data = events_path.read_bytes()
        if kind == "truncate":
            events_path.write_bytes(data[:max(1, int(len(data) * payload))])
        else:
            events_path.write_bytes(data + payload)
        conn = connect(root / "db.sqlite3")
        try:
            assert ingest_run_dir(conn, run_dir, root=root) == INGESTED
            stored = [json.loads(row[0]) for row in conn.execute(
                "SELECT payload FROM events WHERE run_id = ?"
                " ORDER BY seq", (run_dir.name,))]
            # The ingest parser and the telemetry reference reader must
            # agree on what survived the damage...
            assert stored == telemetry.read_events(run_dir)
            # ...and nothing is invented: the original events survive as
            # a prefix (appended garbage may parse as at most one extra).
            prefix = stored[:len(events)]
            assert prefix == list(events)[:len(prefix)]
            if kind == "truncate":
                assert len(stored) <= len(events)
            else:
                assert len(stored) >= len(events)
        finally:
            conn.close()

    def test_updated_run_is_replaced_atomically(self, tmp_path, db):
        manifest = {"command": "compare", "status": "running",
                    "format_version": 1}
        run_dir = make_run_dir(tmp_path, "r1", manifest,
                               [{"t": 1.0, "kind": "run_started"}])
        assert ingest_run_dir(db, run_dir, root=tmp_path) == INGESTED
        manifest["status"] = "completed"
        (run_dir / telemetry.MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        with open(run_dir / telemetry.EVENTS_NAME, "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"t": 2.0, "kind": "run_finished",
                 "status": "completed"}) + "\n")
        assert ingest_run_dir(db, run_dir, root=tmp_path) == UPDATED
        row = db.execute("SELECT status, events_count, last_event_kind"
                         " FROM runs WHERE run_id = 'r1'").fetchone()
        assert row["status"] == "completed"
        assert row["events_count"] == 2
        assert row["last_event_kind"] == "run_finished"

    def test_corrupt_manifest_round_trips_raw(self, tmp_path, db):
        raw = '{"command": "compare", "status": "comp'  # torn mid-write
        run_dir = make_run_dir(tmp_path, "r1", None, raw_manifest=raw)
        warnings = []
        assert ingest_run_dir(db, run_dir, root=tmp_path,
                              on_warning=warnings.append) == INGESTED
        assert export_manifest(db, "r1") == raw
        assert get_run(db, "r1")["status"] == "corrupt"
        assert any("corrupt manifest" in w for w in warnings)

    def test_missing_manifest_is_skipped(self, tmp_path, db):
        run_dir = tmp_path / "r1"
        run_dir.mkdir()
        assert ingest_run_dir(db, run_dir, root=tmp_path) == SKIPPED

    def test_ingest_runs_root_counts(self, tmp_path, db):
        for index in range(3):
            make_run_dir(tmp_path, f"r{index}",
                         {"command": "compare", "status": "completed"})
        (tmp_path / "not-a-run").mkdir()
        counts = ingest_runs_root(db, tmp_path)
        assert counts == {INGESTED: 3, UPDATED: 0, UNCHANGED: 0,
                          SKIPPED: 0}
        assert ingest_runs_root(db, tmp_path)[UNCHANGED] == 3

    def test_rebuildable_index_after_deletion(self, tmp_path):
        """DESIGN decision 13: delete the DB, re-ingest, nothing is lost."""
        run_dir = make_run_dir(
            tmp_path, "r1",
            {"command": "compare", "status": "completed"},
            [{"t": 1.0, "kind": "run_started"}],
        )
        db_path = tmp_path / "db.sqlite3"
        conn = connect(db_path)
        ingest_run_dir(conn, run_dir, root=tmp_path)
        before = export_manifest(conn, "r1")
        conn.close()
        db_path.unlink()
        conn = connect(db_path)
        try:
            assert ingest_run_dir(conn, run_dir, root=tmp_path) == INGESTED
            assert export_manifest(conn, "r1") == before
        finally:
            conn.close()


class TestQueries:
    def _seed(self, db, tmp_path):
        runs = [
            ("r1", {"command": "compare", "status": "completed",
                    "machine": "m", "llc": "l",
                    "started": "2026-08-01T00:00:00Z",
                    "workloads": ["swaptions"], "policies": ["lru"],
                    "argv": ["compare", "--policies", "lru"],
                    "duration_s": 1.0}),
            ("r2", {"command": "compare", "status": "completed",
                    "machine": "m", "llc": "l",
                    "started": "2026-08-02T00:00:00Z",
                    "workloads": ["water"], "policies": ["srrip"],
                    "argv": ["compare", "--policies", "srrip"],
                    "duration_s": 3.0}),
            ("r3", {"command": "sweep", "status": "failed",
                    "machine": "m", "llc": "l",
                    "started": "2026-08-03T00:00:00Z",
                    "workloads": ["swaptions", "water"]}),
        ]
        for run_id, manifest in runs:
            ingest_run_dir(db, make_run_dir(tmp_path, run_id, manifest),
                           root=tmp_path)

    def test_query_runs_filters(self, tmp_path, db):
        self._seed(db, tmp_path)
        assert [r["run_id"] for r in query_runs(db)] == ["r1", "r2", "r3"]
        assert [r["run_id"] for r in query_runs(db, status="failed")] \
            == ["r3"]
        assert [r["run_id"] for r in query_runs(db, command="compare")] \
            == ["r1", "r2"]
        assert [r["run_id"] for r in query_runs(db, workload="water")] \
            == ["r2", "r3"]
        assert [r["run_id"] for r in query_runs(db, policy="lru")] \
            == ["r1"]
        assert [r["run_id"] for r in query_runs(
            db, since="2026-08-02")] == ["r2", "r3"]
        assert [r["run_id"] for r in query_runs(
            db, until="2026-08-02")] == ["r1", "r2"]
        assert [r["run_id"] for r in query_runs(db, limit=1)] == ["r3"]

    def test_get_run_prefix_and_errors(self, tmp_path, db):
        self._seed(db, tmp_path)
        assert get_run(db, "r2")["run_id"] == "r2"
        with pytest.raises(ConfigError, match="ambiguous"):
            get_run(db, "r")
        with pytest.raises(ConfigError, match="no run"):
            get_run(db, "zz")

    def test_list_experiments_groups(self, tmp_path, db):
        self._seed(db, tmp_path)
        experiments = {e["command"]: e for e in list_experiments(db)}
        assert experiments["compare"]["runs"] == 2
        assert experiments["compare"]["completed"] == 2
        assert experiments["sweep"]["failed"] == 1

    def test_reconstruct_invocation(self, tmp_path, db):
        self._seed(db, tmp_path)
        rendered, argv = reconstruct_invocation(db, "r1")
        assert rendered == "repro-sim compare --policies lru"
        assert argv == ["compare", "--policies", "lru"]
        with pytest.raises(ConfigError, match="recorded no argv"):
            reconstruct_invocation(db, "r3")

    def test_run_detail_aggregates_spans(self, tmp_path, db):
        manifest = {"command": "compare", "status": "completed",
                    "failures": [{"kind": "compare", "workload": "w",
                                  "error_type": "ValueError",
                                  "error": "boom", "attempts": 2}]}
        events = [
            {"t": 1.0, "kind": "span", "stage": "replay",
             "duration_s": 0.5},
            {"t": 2.0, "kind": "span", "stage": "replay",
             "duration_s": 1.5},
        ]
        ingest_run_dir(db, make_run_dir(tmp_path, "r9", manifest, events),
                       root=tmp_path)
        detail = run_detail(db, "r9")
        assert detail["stages"] == [{"stage": "replay", "spans": 2,
                                     "total_s": 2.0, "mean_s": 1.0,
                                     "max_s": 1.5}]
        assert detail["cells"][0]["error_type"] == "ValueError"

    def test_run_regressions_flags_slowdown(self, tmp_path, db):
        self._seed(db, tmp_path)
        report = run_regressions(db, metric="duration_s", tolerance=0.5)
        assert report["direction"] == "lower"
        assert report["regressions"] == 1
        assert not report["ok"]
        assert report["comparisons"][0]["ratio"] == ratio(3.0, 1.0)
        assert run_regressions(db, metric="duration_s",
                               tolerance=5.0)["ok"]


class TestBenchTrajectory:
    def test_committed_trajectory_reproduces_exactly(self, db):
        """Acceptance gate: recorded deltas reproduce bit-for-bit."""
        counts = ingest_bench_dir(db, BENCH_DIR)
        assert counts[INGESTED] >= 4
        report = bench_regressions(db, tolerance=1e9)
        assert report["direction"] == "higher"
        assert report["recorded_mismatches"] == 0
        checked = [c for c in report["comparisons"]
                   if c.get("recorded_matches") is not None]
        assert checked, "no vs_previous deltas were verified"
        for comparison in checked:
            assert comparison["recorded_matches"] is True
            assert comparison["recomputed_speedup"] == \
                comparison["recorded_speedup"]

    def test_committed_trajectory_contains_known_regression(self, db):
        """The c3f2b59 golden-throughput drop is real and detected."""
        ingest_bench_dir(db, BENCH_DIR)
        report = bench_regressions(db, tolerance=0.10)
        assert not report["ok"]
        regressed = [c for c in report["comparisons"] if c["regressed"]]
        assert any(c["rev"].startswith("c3f2b59") for c in regressed)

    def test_tampered_file_reports_recorded_mismatch(self, tmp_path, db):
        source = json.loads(
            sorted(BENCH_DIR.glob("BENCH_*.json"))[0].read_text())
        base = dict(source, rev="aaa", recorded_at="2026-01-01T00:00:00Z")
        base.pop("vs_previous", None)
        after = json.loads(json.dumps(base))
        after.update(rev="bbb", recorded_at="2026-01-02T00:00:00Z",
                     vs_previous={"rev": "aaa", "golden_speedup": 2.0})
        for payload in (base, after):
            path = tmp_path / f"BENCH_{payload['rev']}.json"
            path.write_text(json.dumps(payload), encoding="utf-8")
        ingest_bench_dir(db, tmp_path)
        report = bench_regressions(db, tolerance=1e9)
        assert report["recorded_mismatches"] == 1
        assert not report["ok"]

    def test_bench_ingest_idempotent_and_updatable(self, tmp_path, db):
        path = tmp_path / "BENCH_x.json"
        payload = {"rev": "x", "recorded_at": "2026-01-01T00:00:00Z",
                   "golden_cell": "g",
                   "cells": {"g": {"min_sec": 1.0, "mean_sec": 1.0,
                                   "max_sec": 1.0, "accesses": 10,
                                   "accesses_per_sec": 10.0,
                                   "repeats": 3}}}
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert ingest_bench_file(db, path) == INGESTED
        assert ingest_bench_file(db, path) == UNCHANGED
        payload["cells"]["g"]["accesses_per_sec"] = 20.0
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert ingest_bench_file(db, path) == UPDATED
        row = db.execute("SELECT accesses_per_sec FROM bench_samples"
                         " WHERE file = 'BENCH_x.json'").fetchone()
        assert row[0] == 20.0

    def test_non_bench_json_is_skipped(self, tmp_path, db):
        path = tmp_path / "BENCH_junk.json"
        path.write_text("[1, 2]", encoding="utf-8")
        assert ingest_bench_file(db, path) == SKIPPED


class TestLiveWriter:
    def test_live_writer_matches_posthoc_ingest(self, tmp_path):
        root = tmp_path / "runs"
        run = telemetry.create_run(root, command="test",
                                   argv=["compare", "--x"])
        live_db = tmp_path / "live.sqlite3"
        run.attach_sink(LiveDbWriter(live_db, run))
        with telemetry.activate(run):
            with telemetry.span("stage_a"):
                pass
            telemetry.emit("cell_done", cell_kind="compare",
                           workload="w", duration_s=0.1)
        run.update_manifest(workloads=["w"], policies=["lru"])
        run.finish(status="completed")

        posthoc_db = tmp_path / "posthoc.sqlite3"
        conn = connect(posthoc_db)
        ingest_runs_root(conn, root)
        conn.close()

        live = sqlite3.connect(str(live_db))
        posthoc = sqlite3.connect(str(posthoc_db))
        try:
            for sql in (
                "SELECT run_id, status, command, manifest_json,"
                " manifest_digest, events_bytes, events_count,"
                " events_malformed, last_event_kind FROM runs",
                "SELECT run_id, seq, kind, payload FROM events"
                " ORDER BY seq",
                "SELECT run_id, seq, stage, duration_s FROM spans"
                " ORDER BY seq",
            ):
                assert live.execute(sql).fetchall() == \
                    posthoc.execute(sql).fetchall()
        finally:
            live.close()
            posthoc.close()

    def test_close_reconciles_worker_appended_events(self, tmp_path):
        """Events the live sink never saw (worker JSONL appends) land."""
        root = tmp_path / "runs"
        run = telemetry.create_run(root, command="test")
        writer = LiveDbWriter(tmp_path / "db.sqlite3", run)
        run.attach_sink(writer)
        with open(run.run_dir / telemetry.EVENTS_NAME, "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps({"t": 1.0, "pid": 999,
                                     "role": "worker",
                                     "kind": "cell_done"}) + "\n")
        run.finish(status="completed")
        conn = sqlite3.connect(str(tmp_path / "db.sqlite3"))
        try:
            kinds = [row[0] for row in conn.execute(
                "SELECT kind FROM events WHERE run_id = ? ORDER BY seq",
                (run.run_id,))]
        finally:
            conn.close()
        assert "cell_done" in kinds
        assert kinds[-1] == "run_finished"

    def test_raising_sink_is_detached_not_fatal(self, tmp_path, capsys):
        run = telemetry.create_run(tmp_path, command="test")

        class Exploding:
            def on_event(self, record):
                raise RuntimeError("sink died")

            def close(self):
                pass

        run.attach_sink(Exploding())
        run.event("one")
        run.event("two")
        run.finish(status="completed")
        err = capsys.readouterr().err
        assert err.count("telemetry sink") == 1
        assert telemetry.read_events(run.run_dir)[-1]["kind"] == \
            "run_finished"


class TestTail:
    def _write_events(self, run_dir, events):
        run_dir.mkdir(parents=True, exist_ok=True)
        with open(run_dir / telemetry.EVENTS_NAME, "w",
                  encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")

    def test_tail_renders_progress_and_exit_status(self, tmp_path):
        run_dir = tmp_path / "r1"
        self._write_events(run_dir, [
            {"kind": "run_started", "command": "compare"},
            {"kind": "cells_start", "total": 2, "jobs": 1},
            {"kind": "cell_done", "cell_kind": "compare", "workload": "w",
             "duration_s": 0.25},
            {"kind": "cell_failed", "cell_kind": "compare",
             "workload": "x", "attempts": 3, "error_type": "ValueError",
             "error": "boom"},
            {"kind": "cells_done", "total": 2, "failed": 1},
            {"kind": "run_finished", "status": "completed_with_failures"},
        ])
        out = io.StringIO()
        status = tail_run(run_dir, follow=False, out=out)
        text = out.getvalue()
        assert status == 0  # completed_with_failures still completed
        assert "cell 1/2 ok" in text
        assert "FAILED (compare, x)" in text
        assert "run finished: completed_with_failures" in text

    def test_tail_failed_run_exits_nonzero(self, tmp_path):
        run_dir = tmp_path / "r1"
        self._write_events(run_dir, [
            {"kind": "run_finished", "status": "failed"},
        ])
        assert tail_run(run_dir, follow=False, out=io.StringIO()) == 1

    def test_tail_json_mode_passes_raw_lines(self, tmp_path):
        run_dir = tmp_path / "r1"
        events = [{"kind": "run_started", "command": "compare"},
                  {"kind": "run_finished", "status": "completed"}]
        self._write_events(run_dir, events)
        out = io.StringIO()
        assert tail_run(run_dir, follow=False, json_mode=True,
                        out=out) == 0
        lines = [json.loads(line) for line in
                 out.getvalue().strip().splitlines()]
        assert lines == events

    def test_tail_skips_torn_lines_and_follows_appends(self, tmp_path):
        run_dir = tmp_path / "r1"
        self._write_events(run_dir, [{"kind": "run_started",
                                      "command": "x"}])
        events_path = run_dir / telemetry.EVENTS_NAME
        with open(events_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "torn')  # no newline: mid-write

        def append_rest(_seconds):
            with open(events_path, "a", encoding="utf-8") as handle:
                handle.write(' event"}\n')
                handle.write(json.dumps({"kind": "run_finished",
                                         "status": "completed"}) + "\n")

        out = io.StringIO()
        assert tail_run(run_dir, follow=True, out=out,
                        sleep=append_rest) == 0
        assert "run finished: completed" in out.getvalue()

    def test_tail_timeout_returns_cleanly(self, tmp_path):
        run_dir = tmp_path / "r1"
        self._write_events(run_dir, [{"kind": "run_started",
                                      "command": "x"}])
        ticks = iter([0.0, 0.0, 10.0, 20.0, 30.0])
        out = io.StringIO()
        status = tail_run(run_dir, follow=True, timeout=5.0, out=out,
                          sleep=lambda _s: None,
                          clock=lambda: next(ticks))
        assert status == 0
        assert "timeout" in out.getvalue()


class TestCli:
    def _ingested(self, tmp_path, capsys):
        """A cache dir with one real run + the committed bench files."""
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        assert main(["db", "ingest", "--cache-dir", cache,
                     "--bench-dir", str(BENCH_DIR)]) == 0
        capsys.readouterr()
        return cache

    def test_db_subcommands_smoke(self, capsys, tmp_path):
        cache = self._ingested(tmp_path, capsys)

        assert main(["db", "experiments", "--cache-dir", cache]) == 0
        assert "compare" in capsys.readouterr().out

        assert main(["db", "runs", "--cache-dir", cache, "--json"]) == 0
        runs = json.loads(capsys.readouterr().out)["runs"]
        assert len(runs) == 1
        run_id = runs[0]["run_id"]

        assert main(["db", "show", run_id[:10], "--cache-dir",
                     cache]) == 0
        out = capsys.readouterr().out
        assert "Stage spans" in out

        assert main(["db", "replay", run_id, "--cache-dir", cache,
                     "--json"]) == 0
        replay = json.loads(capsys.readouterr().out)
        assert replay["argv"][0] == "compare"
        assert replay["command"].startswith("repro-sim compare")

        assert main(["db", "export", run_id, "--cache-dir", cache]) == 0
        exported = capsys.readouterr().out
        source = (telemetry.resolve_runs_root(cache_dir=cache) / run_id /
                  telemetry.MANIFEST_NAME).read_text(encoding="utf-8")
        assert exported == source

        assert main(["db", "tail", run_id, "--cache-dir", cache,
                     "--no-follow"]) == 0
        assert "run finished" in capsys.readouterr().out

    def test_db_runs_filters_through_cli(self, capsys, tmp_path):
        cache = self._ingested(tmp_path, capsys)
        assert main(["db", "runs", "--cache-dir", cache, "--workload",
                     "swaptions", "--status", "completed", "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)["runs"]) == 1
        assert main(["db", "runs", "--cache-dir", cache, "--workload",
                     "nonexistent", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["runs"] == []

    def test_db_regressions_gate_through_cli(self, capsys, tmp_path):
        cache = self._ingested(tmp_path, capsys)
        # The committed trajectory carries a real >10% golden-cell drop.
        assert main(["db", "regressions", "--cache-dir", cache,
                     "--tolerance", "0.10", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["regressions"] >= 1
        assert report["recorded_mismatches"] == 0
        assert main(["db", "regressions", "--cache-dir", cache,
                     "--tolerance", "0.40"]) == 0

    def test_db_query_without_database_is_an_error(self, capsys,
                                                   tmp_path):
        assert main(["db", "runs", "--cache-dir",
                     str(tmp_path / "empty")]) == 2
        assert "no experiment database" in capsys.readouterr().err

    def test_live_db_flag_mirrors_run(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache, "--db"]) == 0
        capsys.readouterr()
        db_path = telemetry.resolve_runs_root(cache_dir=cache) / \
            DB_FILENAME
        assert db_path.is_file()
        assert main(["db", "runs", "--cache-dir", cache, "--json"]) == 0
        runs = json.loads(capsys.readouterr().out)["runs"]
        assert len(runs) == 1
        assert runs[0]["status"] == "completed"
        assert runs[0]["last_event_kind"] == "run_finished"

    def test_live_db_env_toggle(self, capsys, tmp_path, monkeypatch):
        cache = str(tmp_path / "cache")
        target = tmp_path / "env.sqlite3"
        monkeypatch.setenv(DB_ENV, str(target))
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert target.is_file()
        assert main(["db", "runs", "--db", str(target), "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)["runs"]) == 1

    def test_runs_list_shows_event_summaries(self, capsys, tmp_path):
        cache = self._ingested(tmp_path, capsys)
        assert main(["runs", "list", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "run_finished" in out

    def test_runs_show_sweeps_orphan_manifests(self, capsys, tmp_path):
        import os

        cache = str(tmp_path / "cache")
        assert main(["compare", *FAST, "--policies", "lru",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        root = telemetry.resolve_runs_root(cache_dir=cache)
        run_id = telemetry.list_runs(root)[0].run_id
        orphan = root / run_id / f"tmp999-{telemetry.MANIFEST_NAME}"
        orphan.write_text("{}", encoding="utf-8")
        stale = telemetry._ORPHAN_GRACE_SEC + 60
        os.utime(orphan, (orphan.stat().st_atime - stale,
                          orphan.stat().st_mtime - stale))
        assert main(["runs", "show", run_id, "--cache-dir", cache]) == 0
        assert "swept 1 orphaned manifest" in capsys.readouterr().err
        assert not orphan.exists()
