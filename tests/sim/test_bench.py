"""Tests for the tracked benchmark trajectory (``repro.sim.bench``).

Timing magnitudes are machine noise and never asserted; what is pinned
down is the *shape* of the trajectory: one schema-versioned
``BENCH_<rev>.json`` per revision, every canonical cell present, the
disabled-probe overhead computed from the right cells, and the
comparison against the previous revision's file.
"""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.sim.bench import (
    BENCH_FORMAT_VERSION,
    GOLDEN_CELL,
    OVERHEAD_CELL,
    REPLAY_PROBES,
    current_rev,
    disabled_probe_overhead,
    previous_bench,
    run_bench,
)
from repro.sim.experiment import ExperimentContext

EXPECTED_CELLS = {
    "warm_replay_lru_fastpath",
    "warm_replay_lru_scalar",
    "warm_replay_srrip",
    "warm_replay_srrip_scalar",
    "warm_replay_drrip",
    "warm_replay_drrip_scalar",
    "warm_replay_ship",
    "warm_replay_ship_native",
    "warm_replay_ship_scalar",
    "warm_replay_oracle_native",
    "warm_replay_oracle_scalar",
    "warm_replay_srrip_sharded",
    "warm_replay_drrip_sharded",
    "warm_sweep_grid",
    "warm_sweep_grid_percell",
    "probed_disabled",
    "probed_full_fastpath",
    "probed_full_scalar",
}


@pytest.fixture
def context(tiny_machine):
    return ExperimentContext(
        tiny_machine, target_accesses=2_000, seed=5, workloads=["swaptions"]
    )


class TestRunBench:
    def test_writes_versioned_snapshot_with_every_cell(
        self, context, tmp_path
    ):
        payload, path = run_bench(
            context, workload="swaptions", repeats=1,
            out_dir=str(tmp_path), rev="aaa0001",
        )
        assert path == tmp_path / "BENCH_aaa0001.json"
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert payload["format_version"] == BENCH_FORMAT_VERSION
        assert payload["rev"] == "aaa0001"
        assert payload["workload"] == "swaptions"
        assert set(payload["cells"]) == EXPECTED_CELLS
        from repro.sim.bench import GATE_PAIR_MIN_REPEATS

        for name, cell in payload["cells"].items():
            expected = (
                GATE_PAIR_MIN_REPEATS
                if name in (GOLDEN_CELL, OVERHEAD_CELL) else 1
            )
            assert cell["repeats"] == expected
            assert cell["min_sec"] > 0
            assert cell["min_sec"] <= cell["mean_sec"] <= cell["max_sec"]
            assert cell["accesses"] > 0
        assert payload["golden_cell"] == GOLDEN_CELL
        assert payload["overhead_cell"] == OVERHEAD_CELL
        assert isinstance(payload["disabled_probe_overhead"], float)
        assert "vs_previous" not in payload  # nothing to compare against

    def test_second_revision_compares_against_previous(
        self, context, tmp_path
    ):
        run_bench(context, workload="swaptions", repeats=1,
                  out_dir=str(tmp_path), rev="aaa0001")
        payload, __ = run_bench(context, workload="swaptions", repeats=1,
                                out_dir=str(tmp_path), rev="bbb0002")
        assert payload["vs_previous"]["rev"] == "aaa0001"
        assert payload["vs_previous"]["golden_speedup"] > 0

    def test_rerun_of_same_revision_never_compares_to_itself(
        self, context, tmp_path
    ):
        run_bench(context, workload="swaptions", repeats=1,
                  out_dir=str(tmp_path), rev="aaa0001")
        payload, __ = run_bench(context, workload="swaptions", repeats=1,
                                out_dir=str(tmp_path), rev="aaa0001")
        assert "vs_previous" not in payload

    def test_rejects_nonpositive_repeats(self, context, tmp_path):
        with pytest.raises(ConfigError, match="repeats"):
            run_bench(context, repeats=0, out_dir=str(tmp_path))


class TestHelpers:
    def test_overhead_is_ratio_of_minima(self):
        cells = {
            GOLDEN_CELL: {"min_sec": 2.0},
            OVERHEAD_CELL: {"min_sec": 2.1},
        }
        assert disabled_probe_overhead(cells) == pytest.approx(0.05)

    def test_previous_bench_skips_corrupt_files(self, tmp_path):
        good = tmp_path / "BENCH_aaa0001.json"
        good.write_text(json.dumps({"rev": "aaa0001", "cells": {}}))
        (tmp_path / "BENCH_zzz9999.json").write_text("{not json")
        (tmp_path / "BENCH_yyy8888.json").write_text('"a string"')
        found = previous_bench(tmp_path, "ccc0003")
        assert found["rev"] == "aaa0001"

    def test_previous_bench_empty_dir(self, tmp_path):
        assert previous_bench(tmp_path, "aaa0001") is None

    def test_current_rev_outside_git(self, tmp_path):
        assert current_rev(str(tmp_path)) == "unknown"

    def test_probe_cells_use_only_fastpath_safe_probes(self):
        from repro.sim.probes import make_probe

        assert all(make_probe(name).fastpath_safe for name in REPLAY_PROBES)

    def test_setpath_speedups_are_ratios_of_minima(self):
        from repro.sim.bench import SETPATH_GATE_PAIRS, setpath_speedups

        cells = {
            "warm_replay_srrip": {"min_sec": 1.0},
            "warm_replay_srrip_scalar": {"min_sec": 4.0},
            "warm_replay_drrip": {"min_sec": 2.0},
            "warm_replay_drrip_scalar": {"min_sec": 3.0},
        }
        speedups = setpath_speedups(cells)
        assert set(speedups) == set(SETPATH_GATE_PAIRS)
        assert speedups["warm_replay_srrip"] == pytest.approx(4.0)
        assert speedups["warm_replay_drrip"] == pytest.approx(1.5)

    def test_setpath_pairs_are_cells(self):
        from repro.sim.bench import SETPATH_GATE_PAIRS

        for fast, twin in SETPATH_GATE_PAIRS.items():
            assert fast in EXPECTED_CELLS
            assert twin in EXPECTED_CELLS

    def test_gridpath_speedups_are_ratios_of_minima(self):
        from repro.sim.bench import GRIDPATH_GATE_PAIRS, gridpath_speedups

        cells = {
            "warm_sweep_grid": {"min_sec": 1.0},
            "warm_sweep_grid_percell": {"min_sec": 3.0},
        }
        speedups = gridpath_speedups(cells)
        assert set(speedups) == set(GRIDPATH_GATE_PAIRS)
        assert speedups["warm_sweep_grid"] == pytest.approx(3.0)

    def test_gridpath_pairs_are_cells(self):
        from repro.sim.bench import GRIDPATH_GATE_PAIRS

        for grid, twin in GRIDPATH_GATE_PAIRS.items():
            assert grid in EXPECTED_CELLS
            assert twin in EXPECTED_CELLS

    def test_nativepath_speedups_are_ratios_of_minima(self):
        from repro.sim.bench import NATIVEPATH_GATE_PAIRS, nativepath_speedups

        cells = {
            "warm_replay_ship_native": {"min_sec": 1.0},
            "warm_replay_ship_scalar": {"min_sec": 2.5},
            "warm_replay_oracle_native": {"min_sec": 2.0},
            "warm_replay_oracle_scalar": {"min_sec": 6.0},
        }
        speedups = nativepath_speedups(cells)
        assert set(speedups) == set(NATIVEPATH_GATE_PAIRS)
        assert speedups["warm_replay_ship_native"] == pytest.approx(2.5)
        assert speedups["warm_replay_oracle_native"] == pytest.approx(3.0)

    def test_nativepath_pairs_are_cells(self):
        from repro.sim.bench import NATIVEPATH_GATE_PAIRS

        for fast, twin in NATIVEPATH_GATE_PAIRS.items():
            assert fast in EXPECTED_CELLS
            assert twin in EXPECTED_CELLS


class TestCliBench:
    ARGS = ["bench", "--accesses", "2000", "--workload", "swaptions",
            "--repeats", "1"]

    def test_bench_writes_snapshot_and_reports_overhead(
        self, capsys, tmp_path
    ):
        out_dir = tmp_path / "results"
        assert main([*self.ARGS, "--out-dir", str(out_dir),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "disabled-probe overhead" in out
        assert GOLDEN_CELL in out
        snapshots = list(out_dir.glob("BENCH_*.json"))
        assert len(snapshots) == 1
        payload = json.loads(snapshots[0].read_text())
        assert set(payload["cells"]) == EXPECTED_CELLS

    def test_quick_caps_the_budget(self, capsys, tmp_path, monkeypatch):
        captured = {}

        def fake_run_bench(context, workload, repeats, out_dir):
            captured["accesses"] = context.target_accesses
            captured["repeats"] = repeats
            return (
                {"rev": "test", "cells": {}, "target_accesses": 1,
                 "disabled_probe_overhead": 0.0},
                tmp_path / "BENCH_test.json",
            )

        monkeypatch.setattr("repro.sim.bench.run_bench", fake_run_bench)
        assert main(["bench", "--quick", "--accesses", "999999",
                     "--repeats", "5",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert captured["accesses"] <= 60_000
        assert captured["repeats"] <= 2

    def test_overhead_gate_fails_the_command(
        self, capsys, tmp_path, monkeypatch
    ):
        def fake_run_bench(context, workload, repeats, out_dir):
            return (
                {"rev": "test", "cells": {}, "target_accesses": 1,
                 "disabled_probe_overhead": 0.5},
                tmp_path / "BENCH_test.json",
            )

        monkeypatch.setattr("repro.sim.bench.run_bench", fake_run_bench)
        assert main(["bench", "--max-overhead", "0.02",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        err = capsys.readouterr().err
        assert "exceeds" in err

    def test_setpath_speedup_gate_fails_the_command(
        self, capsys, tmp_path, monkeypatch
    ):
        def fake_run_bench(context, workload, repeats, out_dir):
            return (
                {"rev": "test", "cells": {}, "target_accesses": 1,
                 "disabled_probe_overhead": 0.0,
                 "setpath_speedups": {"warm_replay_srrip": 1.1,
                                      "warm_replay_drrip": 3.0}},
                tmp_path / "BENCH_test.json",
            )

        monkeypatch.setattr("repro.sim.bench.run_bench", fake_run_bench)
        assert main(["bench", "--min-setpath-speedup", "2.0",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        err = capsys.readouterr().err
        assert "warm_replay_srrip" in err and "scalar twin" in err
        # ... and passes when every pair clears the bound.
        def fake_ok(context, workload, repeats, out_dir):
            return (
                {"rev": "test", "cells": {}, "target_accesses": 1,
                 "disabled_probe_overhead": 0.0,
                 "setpath_speedups": {"warm_replay_srrip": 2.5,
                                      "warm_replay_drrip": 3.0}},
                tmp_path / "BENCH_test.json",
            )

        monkeypatch.setattr("repro.sim.bench.run_bench", fake_ok)
        assert main(["bench", "--min-setpath-speedup", "2.0",
                     "--cache-dir", str(tmp_path / "cache")]) == 0

    def test_gridpath_speedup_gate_fails_the_command(
        self, capsys, tmp_path, monkeypatch
    ):
        def fake_run_bench(context, workload, repeats, out_dir):
            return (
                {"rev": "test", "cells": {}, "target_accesses": 1,
                 "disabled_probe_overhead": 0.0,
                 "gridpath_speedups": {"warm_sweep_grid": 1.3}},
                tmp_path / "BENCH_test.json",
            )

        monkeypatch.setattr("repro.sim.bench.run_bench", fake_run_bench)
        assert main(["bench", "--min-gridpath-speedup", "2.0",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        err = capsys.readouterr().err
        assert "warm_sweep_grid" in err and "per-cell twin" in err
        # ... and passes when the grid clears the bound.
        def fake_ok(context, workload, repeats, out_dir):
            return (
                {"rev": "test", "cells": {}, "target_accesses": 1,
                 "disabled_probe_overhead": 0.0,
                 "gridpath_speedups": {"warm_sweep_grid": 2.4}},
                tmp_path / "BENCH_test.json",
            )

        monkeypatch.setattr("repro.sim.bench.run_bench", fake_ok)
        assert main(["bench", "--min-gridpath-speedup", "2.0",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
