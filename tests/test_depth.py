"""Additional depth tests across layers (behaviours not covered elsewhere)."""

import pytest

from repro.cache.hierarchy import CmpHierarchy
from repro.cache.llc import SharedLlc
from repro.common.config import CacheGeometry
from repro.common.rng import DeterministicRng
from repro.policies.lru import LruPolicy
from repro.policies.rrip import BrripPolicy
from repro.workloads import kernels
from repro.workloads.layout import Region
from tests.conftest import make_trace

B = 64


class TestKernelDetails:
    def test_task_queue_write_fraction_zero(self):
        streams = [[] for __ in range(2)]
        kernels.emit_task_queue(
            streams, DeterministicRng(1), Region("q", 0, 2),
            Region("t", 100, 16), pc_queue=1, pc_task=2, num_tasks=20,
            task_blocks=2, task_write_fraction=0.0,
        )
        task_writes = [
            w for s in streams for pc, __a, w in s if pc == 2 and w
        ]
        assert not task_writes

    def test_task_queue_write_fraction_one(self):
        streams = [[] for __ in range(2)]
        kernels.emit_task_queue(
            streams, DeterministicRng(1), Region("q", 0, 2),
            Region("t", 100, 16), pc_queue=1, pc_task=2, num_tasks=10,
            task_blocks=2, task_write_fraction=1.0,
        )
        task_accesses = [
            (a, w) for s in streams for pc, a, w in s if pc == 2
        ]
        # Every task block gets a read followed by a write.
        assert sum(1 for __, w in task_accesses if w) == len(task_accesses) // 2

    def test_reduction_with_three_threads(self):
        streams = [[] for __ in range(3)]
        partials = [Region(f"p{i}", i * 10, 2) for i in range(3)]
        kernels.emit_reduction(streams, partials, 1, 2)
        # Tree: stride 1 pairs (0,1); stride 2 pairs (0,2). Thread 0 reads
        # both other partials eventually.
        reads0 = {a // B for pc, a, w in streams[0] if pc == 2 and not w}
        assert {10, 11} <= reads0
        assert {20, 21} <= reads0

    def test_migratory_single_thread_falls_back(self):
        streams = [[]]
        kernels.emit_migratory(
            streams, DeterministicRng(2), Region("m", 0, 8), pc=1,
            items=3, hops=2,
        )
        assert streams[0]  # single-thread run still emits RMW traffic

    def test_halo_grid_smaller_than_threads(self):
        # 2 rows for 4 threads: threads beyond the rows contribute nothing.
        streams = [[] for __ in range(4)]
        kernels.emit_halo_exchange(streams, Region("g", 0, 4), row_blocks=2,
                                   pc_compute=1, pc_halo=2)
        assert streams[0] and streams[1]
        assert not streams[2] and not streams[3]


class TestPolicyDetails:
    def test_brrip_insertion_statistics(self):
        policy = BrripPolicy(seed=5, throttle=32)
        samples = [policy.insertion_rrpv(0) for __ in range(3200)]
        long_insertions = sum(1 for value in samples if value == 2)
        # ~1/32 of fills go long; allow generous slack.
        assert 40 < long_insertions < 250

    def test_ship_signature_stable(self):
        from repro.policies.ship import ShipPolicy

        policy = ShipPolicy()
        assert policy._hash_pc(0x400123) == policy._hash_pc(0x400123)

    def test_opt_tie_break_is_deterministic(self):
        from repro.policies.opt import BeladyOptPolicy, compute_next_use
        from repro.sim.engine import LlcOnlySimulator
        from tests.conftest import read_stream

        blocks = [0, 1, 2, 3]  # all dead after first touch
        stream = read_stream(blocks)

        def misses():
            policy = BeladyOptPolicy(compute_next_use(stream.blocks))
            return LlcOnlySimulator(CacheGeometry(2 * 64, 2), policy).run(
                stream
            ).misses

        assert misses() == misses() == 4


class TestHierarchyDetails:
    def test_l1_eviction_keeps_block_in_l2(self, tiny_machine):
        # Fill one L1 set (2 sets x 4 ways) past capacity with same-set
        # blocks; evicted L1 blocks must remain in the bigger L2.
        blocks = [0, 2, 4, 6, 8]
        accesses = [(0, 0x1, b * B, False) for b in blocks]
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        hierarchy.run(make_trace(accesses))
        l1 = set(hierarchy.l1s[0].resident_blocks())
        l2 = set(hierarchy.l2s[0].resident_blocks())
        assert len(l1) < len(blocks)
        assert set(blocks) <= l2

    def test_directory_cleared_after_llc_eviction(self, tiny_machine):
        accesses = [(0, 0x1, 0, False)]
        accesses += [(1, 0x2, (8 * i) * B, False) for i in range(1, 9)]
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        hierarchy.run(make_trace(accesses))
        assert not hierarchy.directory.is_cached(0)

    def test_upgrade_then_reread_pattern_counts(self, tiny_machine):
        """The classic RW-sharing ping-pong at the stats level."""
        accesses = []
        for round_ in range(5):
            accesses.append((0, 0x1, 0, True))
            accesses.append((1, 0x2, 0, False))
        hierarchy = CmpHierarchy(tiny_machine, LruPolicy())
        hierarchy.run(make_trace(accesses))
        stats = hierarchy.stats
        # Each write after core 1 has read invalidates core 1's copy, so
        # every read of core 1 (except none) reaches the LLC.
        assert stats.llc_accesses >= 6
        assert stats.upgrades == 4


class TestCharacterizationDetails:
    def test_report_respects_policy_choice(self):
        from repro.characterization.report import characterize_stream
        from tests.conftest import read_stream

        blocks = [b % 6 for b in range(300)]
        stream = read_stream(blocks)
        geometry = CacheGeometry(4 * 64, 4)
        lru = characterize_stream(stream, geometry, "lru")
        lip = characterize_stream(stream, geometry, "lip")
        assert lru.result.policy == "lru"
        assert lip.result.policy == "lip"
        assert lru.breakdown.residencies != lip.breakdown.residencies

    def test_degree_hits_sum_to_total_hits(self):
        from repro.characterization.hits import SharingClassifier
        from repro.sim.engine import LlcOnlySimulator
        from tests.conftest import make_stream

        rng = DeterministicRng(4)
        accesses = [
            (rng.randrange(3), 0, rng.randrange(10), rng.random() < 0.2)
            for __ in range(1000)
        ]
        classifier = SharingClassifier()
        LlcOnlySimulator(
            CacheGeometry(2 * 2 * 64, 2), LruPolicy(), observers=(classifier,)
        ).run(make_stream(accesses))
        breakdown = classifier.breakdown
        assert sum(breakdown.degree_hits.values()) == breakdown.hits
        assert sum(breakdown.degree_residencies.values()) == breakdown.residencies
