"""Cross-cutting integration tests: the full pipeline end to end.

These exercise trace generation -> hierarchy -> stream recording -> replay
analyses on miniature configurations, asserting the qualitative results the
paper's experiments rely on.
"""

import pytest

from repro.common.config import CacheGeometry, MachineConfig
from repro.oracle.runner import run_oracle_study
from repro.predictors.harness import PredictorHarness
from repro.predictors.registry import make_predictor
from repro.sim.experiment import ExperimentContext
from repro.sim.multipass import run_opt, run_policy_on_stream


@pytest.fixture(scope="module")
def context():
    machine = MachineConfig(
        name="integration",
        num_cores=4,
        l1=CacheGeometry(512, 4),
        l2=CacheGeometry(1024, 4),
        llc=CacheGeometry(16 * 1024, 8),   # 32 sets x 8 ways
        scale=256,
    )
    return ExperimentContext(
        machine, target_accesses=30_000, seed=11,
        workloads=["streamcluster", "canneal", "swaptions", "barnes"],
    )


class TestPipeline:
    def test_sharing_spectrum_survives_the_hierarchy(self, context):
        """LLC-level residency sharing must mirror trace-level sharing."""
        shared_hit = {
            name: context.characterize(name).breakdown.shared_hit_fraction
            for name in context.workload_list
        }
        assert shared_hit["swaptions"] < 0.3
        assert shared_hit["streamcluster"] > 0.7
        assert shared_hit["barnes"] > 0.5

    def test_shared_blocks_earn_disproportionate_hits(self, context):
        """The paper's F2 motivation on at least the sharing-heavy apps."""
        breakdown = context.characterize("streamcluster").breakdown
        assert breakdown.hit_density_ratio > 1.0

    def test_opt_dominates_and_bounds_oracle(self, context):
        for name in context.workload_list:
            artifacts = context.artifacts(name)
            lru = run_policy_on_stream(artifacts.stream, context.geometry, "lru")
            opt = run_opt(artifacts.stream, context.geometry)
            study = run_oracle_study(artifacts.stream, context.geometry)
            assert opt.misses <= lru.misses
            # The oracle is a restricted form of future knowledge: it can
            # never beat full OPT.
            assert study.oracle.misses >= opt.misses

    def test_oracle_helps_sharing_heavy_not_private(self, context):
        sharing_gain = context.oracle_study("streamcluster").miss_reduction
        private_gain = context.oracle_study("swaptions").miss_reduction
        assert sharing_gain > private_gain
        assert abs(private_gain) < 0.02

    def test_predictor_accuracy_below_oracle_usefulness(self, context):
        """The paper's negative result: history predictors stay far from
        the accuracy an oracle replacement would need."""
        artifacts = context.artifacts("streamcluster")
        for name in ("address", "pc"):
            predictor = make_predictor(name)
            harness = PredictorHarness(predictor)
            run_policy_on_stream(
                artifacts.stream, context.geometry, "lru", observers=(harness,)
            )
            matrix = harness.matrix
            assert matrix.total > 0
            assert matrix.accuracy < 0.95
            naive = max(matrix.base_rate, 1 - matrix.base_rate)
            assert matrix.accuracy < naive + 0.25

    def test_whole_pipeline_deterministic(self, context):
        """Same seeds end-to-end => identical miss counts."""
        machine = context.machine
        fresh = ExperimentContext(
            machine, target_accesses=30_000, seed=11, workloads=["canneal"]
        )
        a = fresh.artifacts("canneal").hierarchy_stats.llc_misses
        b = context.artifacts("canneal").hierarchy_stats.llc_misses
        assert a == b


class TestScalingMethodology:
    """DESIGN.md's central claim: dividing every capacity and footprint by
    the same factor preserves miss ratios and policy orderings."""

    def machine_at(self, scale):
        return MachineConfig(
            name=f"scale{scale}",
            num_cores=4,
            l1=CacheGeometry(32 * 1024 // scale, 8),
            l2=CacheGeometry(256 * 1024 // scale, 8),
            llc=CacheGeometry(4 * 1024 * 1024 // scale, 16),
            scale=scale,
        )

    def miss_ratio_at(self, scale, workload="canneal", policy="lru"):
        from repro.sim.multipass import record_llc_stream, run_policy_on_stream
        from repro.workloads.registry import get_workload

        machine = self.machine_at(scale)
        trace = get_workload(workload).generate(
            num_threads=4, scale=scale, target_accesses=40_000, seed=13
        )
        stream, __ = record_llc_stream(trace, machine)
        return run_policy_on_stream(stream, machine.llc, policy).miss_ratio

    def test_miss_ratio_stable_across_scales(self):
        at_32 = self.miss_ratio_at(32)
        at_64 = self.miss_ratio_at(64)
        assert at_32 == pytest.approx(at_64, abs=0.08)

    def test_policy_ordering_stable_across_scales(self):
        """streamcluster thrashes LRU; LIP's thrash resistance must show at
        both scales."""
        for scale in (32, 64):
            lru = self.miss_ratio_at(scale, "canneal", "lru")
            random_ = self.miss_ratio_at(scale, "canneal", "random")
            # canneal is capacity-bound: both high, within a band.
            assert abs(lru - random_) < 0.2
