"""Tests for repro.trace.trace and repro.trace.record."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import TraceError
from repro.trace.record import Access
from repro.trace.trace import Trace, TraceBuilder, concatenate

access_tuples = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=1 << 40),
        st.integers(min_value=0, max_value=1 << 40),
        st.booleans(),
    ),
    max_size=50,
)


class TestAccess:
    def test_fields(self):
        access = Access(2, 0x400, 0x1000, True)
        assert access.tid == 2
        assert access.pc == 0x400
        assert access.addr == 0x1000
        assert access.is_write

    def test_block_default(self):
        assert Access(0, 0, 129, False).block() == 2

    def test_block_custom_size(self):
        assert Access(0, 0, 256, False).block(block_bytes=128) == 2


class TestTraceBuilder:
    def test_build_empty(self):
        trace = TraceBuilder().build()
        assert len(trace) == 0
        assert trace.num_threads == 0

    def test_append_and_len(self):
        builder = TraceBuilder()
        builder.append(0, 1, 2, False)
        builder.append(1, 3, 4, True)
        assert len(builder) == 2
        assert len(builder.build()) == 2

    def test_rejects_negative_tid(self):
        with pytest.raises(TraceError):
            TraceBuilder().append(-1, 0, 0, False)

    def test_rejects_negative_addr(self):
        with pytest.raises(TraceError):
            TraceBuilder().append(0, 0, -5, False)

    def test_extend_accesses(self):
        builder = TraceBuilder()
        builder.extend([Access(0, 1, 2, False), Access(1, 2, 3, True)])
        trace = builder.build()
        assert trace[1] == Access(1, 2, 3, True)


class TestTrace:
    def test_getitem_returns_access(self):
        trace = Trace.from_accesses([Access(3, 10, 20, True)])
        assert trace[0] == Access(3, 10, 20, True)
        assert isinstance(trace[0].is_write, bool)

    def test_num_threads_is_max_plus_one(self):
        trace = Trace.from_accesses([Access(0, 0, 0, False), Access(5, 0, 0, False)])
        assert trace.num_threads == 6

    def test_iteration_matches_indexing(self):
        accesses = [Access(i % 3, i, i * 64, i % 2 == 0) for i in range(10)]
        trace = Trace.from_accesses(accesses)
        assert list(trace) == accesses

    def test_slice(self):
        accesses = [Access(0, i, i, False) for i in range(10)]
        trace = Trace.from_accesses(accesses)
        part = trace.slice(2, 5)
        assert list(part) == accesses[2:5]

    def test_slice_open_ended(self):
        trace = Trace.from_accesses([Access(0, i, i, False) for i in range(5)])
        assert len(trace.slice(3)) == 2

    def test_filter_thread(self):
        accesses = [Access(i % 2, i, i, False) for i in range(10)]
        trace = Trace.from_accesses(accesses)
        even = trace.filter_thread(0)
        assert len(even) == 5
        assert all(a.tid == 0 for a in even)

    def test_mismatched_columns_rejected(self):
        from array import array

        with pytest.raises(TraceError):
            Trace(array("h", [0]), array("q"), array("q"), array("b"))

    @given(access_tuples)
    def test_from_accesses_roundtrip(self, tuples):
        accesses = [Access(*t) for t in tuples]
        trace = Trace.from_accesses(accesses)
        assert list(trace) == accesses

    def test_repr_contains_name(self):
        assert "mytrace" in repr(TraceBuilder(name="mytrace").build())


class TestConcatenate:
    def test_orders_traces_end_to_end(self):
        a = Trace.from_accesses([Access(0, 1, 1, False)])
        b = Trace.from_accesses([Access(1, 2, 2, True)])
        joined = concatenate([a, b])
        assert list(joined) == [Access(0, 1, 1, False), Access(1, 2, 2, True)]

    def test_empty_list(self):
        assert len(concatenate([])) == 0
