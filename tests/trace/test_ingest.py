"""Tests for external trace ingestion (:mod:`repro.trace.ingest`)."""

import gzip
import struct

import pytest

from repro.common.errors import TraceError
from repro.trace.ingest import (
    CHAMPSIM_RECORD,
    read_champsim_trace,
    read_external_trace,
    read_pin_trace,
)


def champsim_record(ip, loads=(), stores=()):
    """Pack one 64-byte ChampSim instruction record."""
    src = list(loads) + [0] * (4 - len(loads))
    dst = list(stores) + [0] * (2 - len(stores))
    return CHAMPSIM_RECORD.pack(
        ip, 0, 0, 0, 0, 0, 0, 0, 0, dst[0], dst[1],
        src[0], src[1], src[2], src[3],
    )


@pytest.fixture
def champsim_file(tmp_path):
    path = tmp_path / "app.champsim.bin"
    records = [
        champsim_record(0x400, loads=(0x1000, 0x2000)),
        champsim_record(0x404, stores=(0x3000,)),
        champsim_record(0x408),  # no memory operands
        champsim_record(0x40C, loads=(0x1000,), stores=(0x1000,)),
    ]
    path.write_bytes(b"".join(records))
    return path


@pytest.fixture
def pin_file(tmp_path):
    path = tmp_path / "app.pin.out"
    path.write_text(
        "# pinatrace output\n"
        "0x400: R 0x1000\n"
        "0x404: W 0x2000\n"
        "\n"
        "// four-column multi-threaded form\n"
        "1 R 0x3000 0x408\n"
        "2 w 0x4000 0x40c\n",
        encoding="utf-8",
    )
    return path


class TestChampsim:
    def test_record_size_is_64_bytes(self):
        assert CHAMPSIM_RECORD.size == 64

    def test_loads_then_stores_per_record(self, champsim_file):
        trace = read_champsim_trace(champsim_file)
        tids, pcs, addrs, writes = trace.columns()
        assert len(trace) == 5  # 2 + 1 + 0 + 2
        assert list(addrs) == [0x1000, 0x2000, 0x3000, 0x1000, 0x1000]
        assert list(writes) == [0, 0, 1, 0, 1]
        assert set(tids) == {0}

    def test_tid_is_caller_assigned(self, champsim_file):
        trace = read_champsim_trace(champsim_file, tid=3)
        assert set(trace.columns()[0]) == {3}

    def test_limit_caps_accesses_not_records(self, champsim_file):
        trace = read_champsim_trace(champsim_file, limit=3)
        assert len(trace) == 3

    def test_addresses_are_masked_to_63_bits(self, tmp_path):
        path = tmp_path / "big.champsim.bin"
        path.write_bytes(champsim_record(2**64 - 4, loads=(2**63 + 64,)))
        trace = read_champsim_trace(path)
        _, pcs, addrs, _ = trace.columns()
        assert addrs[0] == 64
        assert pcs[0] >= 0

    def test_truncated_record_raises(self, champsim_file):
        champsim_file.write_bytes(champsim_file.read_bytes()[:-10])
        with pytest.raises(TraceError, match="truncated"):
            read_champsim_trace(champsim_file)

    def test_no_memory_accesses_raises(self, tmp_path):
        path = tmp_path / "empty.champsim.bin"
        path.write_bytes(champsim_record(0x400))
        with pytest.raises(TraceError, match="no memory accesses"):
            read_champsim_trace(path)

    def test_gzip_transparent(self, champsim_file, tmp_path):
        gz = tmp_path / "app.champsim.bin.gz"
        gz.write_bytes(gzip.compress(champsim_file.read_bytes()))
        assert len(read_champsim_trace(gz)) == 5


class TestPin:
    def test_both_line_forms_decode(self, pin_file):
        trace = read_pin_trace(pin_file)
        tids, pcs, addrs, writes = trace.columns()
        assert len(trace) == 4
        assert list(tids) == [0, 0, 1, 2]
        assert list(pcs) == [0x400, 0x404, 0x408, 0x40C]
        assert list(addrs) == [0x1000, 0x2000, 0x3000, 0x4000]
        assert list(writes) == [0, 1, 0, 1]

    def test_limit(self, pin_file):
        assert len(read_pin_trace(pin_file, limit=2)) == 2

    def test_bad_op_raises(self, tmp_path):
        path = tmp_path / "bad.pin.out"
        path.write_text("0x400: X 0x1000\n", encoding="utf-8")
        with pytest.raises(TraceError, match="bad op"):
            read_pin_trace(path)

    def test_bad_number_raises(self, tmp_path):
        path = tmp_path / "bad.pin.out"
        path.write_text("0x400: R zork\n", encoding="utf-8")
        with pytest.raises(TraceError, match="bad number"):
            read_pin_trace(path)

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "bad.pin.out"
        path.write_text("1 2 3 4 5\n", encoding="utf-8")
        with pytest.raises(TraceError, match="unrecognised pin line"):
            read_pin_trace(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.pin.out"
        path.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(TraceError, match="no memory accesses"):
            read_pin_trace(path)


class TestAutoDetection:
    def test_filename_markers_win(self, champsim_file, pin_file):
        assert len(read_external_trace(champsim_file)) == 5
        assert len(read_external_trace(pin_file)) == 4

    def test_content_probe_binary(self, champsim_file, tmp_path):
        neutral = tmp_path / "trace.dat"
        neutral.write_bytes(champsim_file.read_bytes())
        assert len(read_external_trace(neutral)) == 5

    def test_content_probe_text(self, pin_file, tmp_path):
        neutral = tmp_path / "trace.dat"
        neutral.write_text(pin_file.read_text(encoding="utf-8"),
                           encoding="utf-8")
        assert len(read_external_trace(neutral)) == 4

    def test_explicit_format_overrides(self, pin_file):
        trace = read_external_trace(pin_file, fmt="pin", limit=1)
        assert len(trace) == 1

    def test_unknown_format_raises(self, pin_file):
        with pytest.raises(TraceError, match="unknown trace format"):
            read_external_trace(pin_file, fmt="nacho")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            read_external_trace(tmp_path / "ghost.champsim.bin")
