"""Tests for repro.trace.interleave."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import DeterministicRng
from repro.trace.interleave import interleave_streams


def thread_stream(tid, count):
    """A recognisable per-thread stream: pc encodes the sequence index."""
    return [(tid * 10_000 + i, tid * 1_000_000 + i * 64, i % 3 == 0) for i in range(count)]


class TestInterleaveStreams:
    def test_preserves_every_access(self):
        streams = [thread_stream(0, 100), thread_stream(1, 57), thread_stream(2, 3)]
        trace = interleave_streams(streams, DeterministicRng(1))
        assert len(trace) == 160
        assert trace.num_threads == 3

    def test_preserves_per_thread_order(self):
        streams = [thread_stream(0, 200), thread_stream(1, 200)]
        trace = interleave_streams(streams, DeterministicRng(2))
        for tid in (0, 1):
            pcs = [a.pc for a in trace if a.tid == tid]
            assert pcs == sorted(pcs)
            assert len(pcs) == 200

    def test_actually_interleaves(self):
        streams = [thread_stream(0, 500), thread_stream(1, 500)]
        trace = interleave_streams(streams, DeterministicRng(3))
        tids = [a.tid for a in trace]
        # Not a pure concatenation: both threads appear in the first half.
        assert set(tids[:500]) == {0, 1}

    def test_burst_sizes_respected(self):
        streams = [thread_stream(0, 1000), thread_stream(1, 1000)]
        trace = interleave_streams(
            streams, DeterministicRng(4), min_burst=5, max_burst=10
        )
        # Runs of one thread id should never exceed max_burst (runs can be
        # shorter than min_burst only when a stream is exhausted, and can
        # merge across consecutive turns of the same thread; so only check
        # that turns are bounded by inspecting per-thread order instead).
        runs = []
        current_tid, run = trace[0].tid, 1
        for access in list(trace)[1:]:
            if access.tid == current_tid:
                run += 1
            else:
                runs.append(run)
                current_tid, run = access.tid, 1
        # With two live threads a run merges at most a handful of turns;
        # sanity-bound it loosely.
        assert max(runs) <= 100

    def test_deterministic_for_same_seed(self):
        streams = [thread_stream(0, 300), thread_stream(1, 300)]
        a = interleave_streams(streams, DeterministicRng(7))
        b = interleave_streams(streams, DeterministicRng(7))
        assert list(a) == list(b)

    def test_different_seed_differs(self):
        streams = [thread_stream(0, 300), thread_stream(1, 300)]
        a = interleave_streams(streams, DeterministicRng(7))
        b = interleave_streams(streams, DeterministicRng(8))
        assert list(a) != list(b)

    def test_empty_streams_allowed(self):
        trace = interleave_streams([[], thread_stream(1, 10), []], DeterministicRng(1))
        assert len(trace) == 10
        assert all(a.tid == 1 for a in trace)

    def test_no_streams(self):
        assert len(interleave_streams([], DeterministicRng(1))) == 0

    def test_invalid_burst_range(self):
        with pytest.raises(ValueError):
            interleave_streams([[]], DeterministicRng(1), min_burst=0)
        with pytest.raises(ValueError):
            interleave_streams([[]], DeterministicRng(1), min_burst=8, max_burst=4)

    @settings(max_examples=25)
    @given(
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=1 << 30),
    )
    def test_property_complete_and_ordered(self, lengths, seed):
        streams = [thread_stream(tid, n) for tid, n in enumerate(lengths)]
        trace = interleave_streams(streams, DeterministicRng(seed))
        assert len(trace) == sum(lengths)
        for tid, n in enumerate(lengths):
            pcs = [a.pc for a in trace if a.tid == tid]
            assert pcs == [tid * 10_000 + i for i in range(n)]


class TestInterleaveExtremes:
    def test_burst_of_one(self):
        streams = [thread_stream(0, 30), thread_stream(1, 30)]
        trace = interleave_streams(streams, DeterministicRng(9),
                                   min_burst=1, max_burst=1)
        assert len(trace) == 60
        for tid in (0, 1):
            pcs = [a.pc for a in trace if a.tid == tid]
            assert pcs == sorted(pcs)

    def test_burst_larger_than_streams(self):
        streams = [thread_stream(0, 5), thread_stream(1, 5)]
        trace = interleave_streams(streams, DeterministicRng(9),
                                   min_burst=100, max_burst=200)
        # Each thread emitted in one turn; both fully present.
        assert len(trace) == 10

    def test_single_thread(self):
        streams = [thread_stream(0, 50)]
        trace = interleave_streams(streams, DeterministicRng(9))
        assert [a.pc for a in trace] == [i for i in range(50)]
