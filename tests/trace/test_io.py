"""Tests for the binary trace format (repro.trace.io)."""

import gzip
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import TraceError
from repro.trace.io import read_trace, write_trace
from repro.trace.record import Access
from repro.trace.trace import Trace


def roundtrip(trace, tmp_path, filename="t.rtrc"):
    path = tmp_path / filename
    write_trace(trace, path)
    return read_trace(path)


class TestRoundtrip:
    def test_plain_file(self, tmp_path):
        trace = Trace.from_accesses(
            [Access(1, 0x400, 0x1000, True), Access(0, 0x404, 0x2000, False)],
            name="roundtrip",
        )
        loaded = roundtrip(trace, tmp_path)
        assert list(loaded) == list(trace)
        assert loaded.name == "roundtrip"

    def test_empty_trace(self, tmp_path):
        loaded = roundtrip(Trace.from_accesses([], name="empty"), tmp_path)
        assert len(loaded) == 0

    def test_gzip_suffix_compresses(self, tmp_path):
        trace = Trace.from_accesses(
            [Access(0, 0, i * 64, False) for i in range(2000)], name="gz"
        )
        plain, gz = tmp_path / "a.rtrc", tmp_path / "a.rtrc.gz"
        write_trace(trace, plain)
        write_trace(trace, gz)
        assert list(read_trace(gz)) == list(trace)
        assert gz.stat().st_size < plain.stat().st_size

    def test_unicode_name(self, tmp_path):
        trace = Trace.from_accesses([Access(0, 0, 0, False)], name="trace-αβ")
        assert roundtrip(trace, tmp_path).name == "trace-αβ"

    @settings(max_examples=20)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=1 << 60),
                st.integers(min_value=0, max_value=1 << 60),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, tuples):
        import tempfile
        from pathlib import Path

        trace = Trace.from_accesses([Access(*t) for t in tuples])
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.rtrc"
            write_trace(trace, path)
            assert list(read_trace(path)) == list(trace)


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"XXXX" + bytes(20))
        with pytest.raises(TraceError, match="magic"):
            read_trace(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(struct.pack("<4sIQII", b"RTRC", 99, 0, 0, 0))
        with pytest.raises(TraceError, match="version"):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"RT")
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_truncated_column(self, tmp_path):
        trace = Trace.from_accesses([Access(0, 0, i, False) for i in range(100)])
        path = tmp_path / "t.rtrc"
        write_trace(trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 50])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_truncated_gzip_column(self, tmp_path):
        trace = Trace.from_accesses([Access(0, 0, i, False) for i in range(100)])
        path = tmp_path / "t.rtrc.gz"
        write_trace(trace, path)
        raw = gzip.decompress(path.read_bytes())
        path.write_bytes(gzip.compress(raw[:-30]))
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)
