"""Tests for repro.trace.stats."""

from repro.trace.stats import compute_trace_statistics
from tests.conftest import make_trace


class TestComputeTraceStatistics:
    def test_empty_trace(self):
        stats = compute_trace_statistics(make_trace([]))
        assert stats.num_accesses == 0
        assert stats.footprint_blocks == 0
        assert stats.shared_block_fraction == 0.0

    def test_counts_and_footprint(self):
        trace = make_trace([
            (0, 0x1, 0, False),      # block 0
            (0, 0x2, 64, True),      # block 1
            (0, 0x3, 65, False),     # block 1 again
        ])
        stats = compute_trace_statistics(trace)
        assert stats.num_accesses == 3
        assert stats.num_writes == 1
        assert stats.footprint_blocks == 2
        assert stats.footprint_bytes == 128
        assert stats.distinct_pcs == 3

    def test_write_fraction(self):
        trace = make_trace([(0, 0, 0, True), (0, 0, 0, False)])
        assert compute_trace_statistics(trace).write_fraction == 0.5

    def test_shared_blocks_require_two_threads(self):
        trace = make_trace([
            (0, 0, 0, False),
            (1, 0, 0, False),     # block 0 shared
            (0, 0, 64, False),    # block 1 private
            (0, 0, 64, False),
        ])
        stats = compute_trace_statistics(trace)
        assert stats.shared_blocks == 1
        assert stats.footprint_blocks == 2
        assert stats.shared_block_fraction == 0.5
        assert stats.accesses_to_shared == 2
        assert stats.shared_access_fraction == 0.5

    def test_per_thread_accesses(self):
        trace = make_trace([
            (0, 0, 0, False), (2, 0, 0, False), (2, 0, 64, False),
        ])
        stats = compute_trace_statistics(trace)
        assert stats.per_thread_accesses == (1, 0, 2)
        assert stats.num_threads == 3

    def test_same_thread_many_accesses_not_shared(self):
        trace = make_trace([(0, 0, 0, False)] * 10)
        stats = compute_trace_statistics(trace)
        assert stats.shared_blocks == 0

    def test_custom_block_size(self):
        trace = make_trace([(0, 0, 0, False), (1, 0, 100, False)])
        # With 128B blocks both addresses fall in block 0 -> shared.
        stats = compute_trace_statistics(trace, block_bytes=128)
        assert stats.footprint_blocks == 1
        assert stats.shared_blocks == 1
