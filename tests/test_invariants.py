"""Property-based invariants of the simulation stack.

Four families of laws that must hold for *every* input, not just the
fixtures the unit tests happen to pick:

* conservation — hits and misses partition accesses at every cache level,
  and the hierarchy's level counters telescope (``accesses = l1_hits +
  l2_hits + llc_accesses``);
* decomposition — per-thread access counters sum to the trace totals, and
  the shared-block breakdown never exceeds what it decomposes;
* LRU inclusion — a strictly larger LRU cache (same sets, more ways)
  contains the smaller one, so hits are monotone non-decreasing, and
  Belady's OPT never misses more than LRU;
* sampling convergence — a set-sampled replay's miss ratio approaches the
  full simulation's as the sample grows, and equals it at ratio 1.

Randomised cases come from Hypothesis with ``derandomize=True`` so CI is
reproducible; the ``slow`` marker gates a high-iteration fuzz pass meant
for the nightly job (``pytest -m slow``).
"""

import pytest
from hypothesis import given, settings

from repro.cache.hierarchy import CmpHierarchy
from repro.common.config import CacheGeometry
from repro.policies.registry import make_policy
from repro.sim.multipass import run_opt, run_policy_on_stream
from repro.sim.sampling import SampledLlcSimulator
from repro.trace.stats import compute_trace_statistics
from tests.conftest import make_stream, make_trace
from tests.strategies import (
    access_lists as accesses_strategy,
    policy_names,
    stream_lists as stream_strategy,
)


class TestConservation:
    """Hits + misses == accesses, at every level, for any input."""

    @given(accesses=accesses_strategy())
    def test_hierarchy_counters_telescope(self, accesses):
        machine = _tiny_machine()
        stats = CmpHierarchy(machine, make_policy("lru")).run(
            make_trace(accesses)
        )
        assert stats.accesses == len(accesses)
        assert stats.accesses == (
            stats.l1_hits + stats.l2_hits + stats.llc_accesses
        )
        assert stats.llc_accesses == stats.llc_hits + stats.llc_misses
        assert 0.0 <= stats.llc_miss_ratio <= 1.0

    @given(
        accesses=stream_strategy(),
        policy=policy_names(),
    )
    def test_llc_replay_partitions_accesses(self, accesses, policy):
        result = run_policy_on_stream(
            make_stream(accesses), CacheGeometry(2048, 4, 64), policy, seed=7
        )
        assert result.accesses == len(accesses)
        assert result.hits + result.misses == result.accesses
        assert 0.0 <= result.miss_ratio <= 1.0


class TestDecomposition:
    """Per-thread and shared-block counters sum back to the totals."""

    @given(accesses=accesses_strategy(num_threads=4))
    def test_per_thread_accesses_sum_to_total(self, accesses):
        stats = compute_trace_statistics(make_trace(accesses))
        assert sum(stats.per_thread_accesses) == stats.num_accesses
        assert stats.num_accesses == len(accesses)
        assert len(stats.per_thread_accesses) == stats.num_threads

    @given(accesses=accesses_strategy(num_threads=4))
    def test_shared_breakdown_is_bounded(self, accesses):
        stats = compute_trace_statistics(make_trace(accesses))
        assert 0 <= stats.shared_blocks <= stats.footprint_blocks
        assert stats.accesses_to_shared <= stats.num_accesses
        assert stats.num_writes <= stats.num_accesses
        if stats.num_threads == 1:
            assert stats.shared_blocks == 0


class TestLruInclusion:
    """LRU caches nest: same sets + more ways can only add hits."""

    @given(accesses=stream_strategy(max_block=128))
    def test_hits_monotone_in_ways(self, accesses):
        stream = make_stream(accesses)
        hits = []
        for ways in (2, 4, 8):
            # Same 8 sets throughout; capacity grows with ways only.
            geometry = CacheGeometry(8 * ways * 64, ways, 64)
            hits.append(
                run_policy_on_stream(stream, geometry, "lru", seed=0).hits
            )
        assert hits == sorted(hits)

    @given(accesses=stream_strategy(max_block=96))
    def test_opt_never_misses_more_than_lru(self, accesses):
        stream = make_stream(accesses)
        geometry = CacheGeometry(2048, 4, 64)
        lru = run_policy_on_stream(stream, geometry, "lru", seed=0)
        opt = run_opt(stream, geometry)
        assert opt.misses <= lru.misses


class TestSamplingConvergence:
    """Set-sampled miss ratios estimate the full simulation's."""

    def _workload_stream(self, machine, name="water", accesses=20_000):
        from repro.sim.experiment import ExperimentContext

        context = ExperimentContext(
            machine, target_accesses=accesses, seed=5, workloads=[name],
        )
        return context.artifacts(name).stream

    def test_ratio_one_is_exact(self, tiny_machine):
        stream = self._workload_stream(tiny_machine, accesses=5_000)
        geometry = tiny_machine.llc
        full = run_policy_on_stream(stream, geometry, "lru", seed=0)
        sampled = SampledLlcSimulator(
            geometry, make_policy("lru"), sample_ratio=1
        ).run(stream)
        assert sampled.sampled_accesses == full.accesses
        assert sampled.sampled_misses == full.misses
        assert sampled.miss_ratio == full.miss_ratio

    def test_sampled_ratio_converges(self, quad_machine):
        # 16-set LLC sampled 1-in-2 and 1-in-4; fixed seed, no flakes.
        stream = self._workload_stream(quad_machine)
        geometry = quad_machine.llc
        full = run_policy_on_stream(stream, geometry, "lru", seed=0)
        errors = []
        for ratio in (4, 2):
            sampled = SampledLlcSimulator(
                geometry, make_policy("lru"), sample_ratio=ratio
            ).run(stream)
            assert sampled.sampled_accesses > 0
            errors.append(abs(sampled.miss_ratio - full.miss_ratio))
        assert errors[-1] <= 0.1  # the densest sample is close...
        assert all(err <= 0.2 for err in errors)  # ...and none is wild

    def test_offsets_partition_the_stream(self, quad_machine):
        stream = self._workload_stream(quad_machine, accesses=5_000)
        geometry = quad_machine.llc
        full = run_policy_on_stream(stream, geometry, "lru", seed=0)
        totals = 0
        for offset in range(4):
            sampled = SampledLlcSimulator(
                geometry, make_policy("lru"), sample_ratio=4, offset=offset
            ).run(stream)
            totals += sampled.sampled_accesses
        assert totals == full.accesses


@pytest.mark.slow
class TestNightlyFuzz:
    """High-iteration versions of the laws above (``pytest -m slow``)."""

    @settings(max_examples=1000, deadline=None)
    @given(accesses=accesses_strategy(num_threads=4, max_addr=16384))
    def test_hierarchy_counters_telescope_deep(self, accesses):
        stats = CmpHierarchy(_quad_machine(), make_policy("lru")).run(
            make_trace(accesses)
        )
        assert stats.accesses == (
            stats.l1_hits + stats.l2_hits + stats.llc_accesses
        )
        assert stats.llc_accesses == stats.llc_hits + stats.llc_misses

    @settings(max_examples=500, deadline=None)
    @given(
        accesses=stream_strategy(num_cores=4, max_block=256),
        policy=policy_names(),
    )
    def test_llc_replay_partitions_accesses_deep(self, accesses, policy):
        result = run_policy_on_stream(
            make_stream(accesses), CacheGeometry(4096, 8, 64), policy, seed=3
        )
        assert result.hits + result.misses == result.accesses == len(accesses)


def _tiny_machine():
    from repro.common.config import MachineConfig

    return MachineConfig(
        name="tiny", num_cores=2,
        l1=CacheGeometry(512, 4), l2=CacheGeometry(1024, 4),
        llc=CacheGeometry(4096, 8), scale=1024,
    )


def _quad_machine():
    from repro.common.config import MachineConfig

    return MachineConfig(
        name="quad", num_cores=4,
        l1=CacheGeometry(512, 4), l2=CacheGeometry(1024, 4),
        llc=CacheGeometry(8192, 8), scale=1024,
    )
