"""Differential matrix: every accelerated path against its reference.

Two axes, each promising *bit-identical* results:

* fast path vs scalar — the LRU stack-distance replay against the scalar
  ``LlcOnlySimulator`` model, checked for **every registered policy**: the
  eligible one (``lru``) must match exactly; every other policy must be
  *rejected* by the eligibility gate (taking the fast path for a policy it
  does not model would be the bug), which the matrix records as an
  explicit skip with the reason.
* numpy vs pure Python — every dual-implementation kernel
  (:func:`compute_next_use`, :func:`reconstruct_lru_replay`,
  :func:`replay_lru_fastpath`, :func:`build_stream_annotation`) with the
  backend forced each way.

Streams come from real workload models (not synthetic toys), so the
comparison covers sharing, writes, and multi-core interleavings.
"""

import pytest

from repro.common.npsupport import HAVE_NUMPY
from repro.oracle.annotate import build_stream_annotation
from repro.policies.opt import compute_next_use
from repro.policies.registry import POLICY_NAMES
from repro.sim.experiment import ExperimentContext
from repro.sim.fastpath import (
    fastpath_eligible,
    reconstruct_lru_replay,
    replay_lru_fastpath,
)
from repro.sim.multipass import run_policy_on_stream

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable: only the pure-Python "
    "backend exists, nothing to differentiate"
)


@pytest.fixture(scope="module")
def stream(request):
    """One real recorded LLC stream (dedup: shared hash tables, writes)."""
    from repro.common.config import CacheGeometry, MachineConfig

    machine = MachineConfig(
        name="diff", num_cores=4,
        l1=CacheGeometry(512, 4), l2=CacheGeometry(1024, 4),
        llc=CacheGeometry(8192, 8), scale=1024,
    )
    context = ExperimentContext(
        machine, target_accesses=12_000, seed=9, workloads=["dedup"],
    )
    return context.artifacts("dedup").stream


@pytest.fixture(scope="module")
def geometry():
    from repro.common.config import CacheGeometry

    return CacheGeometry(8192, 8, 64)  # 16 sets x 8 ways


class TestFastpathVsScalar:
    @pytest.mark.parametrize("policy", sorted(POLICY_NAMES))
    def test_policy_fastpath_matches_scalar(self, stream, geometry, policy):
        if not fastpath_eligible(policy):
            pytest.skip(
                f"policy {policy!r} is not fast-path eligible by design: "
                "the stack-distance walk models exact LRU only, so this "
                "policy always replays through the scalar model"
            )
        fast = run_policy_on_stream(
            stream, geometry, policy, seed=0, fastpath=True
        )
        scalar = run_policy_on_stream(
            stream, geometry, policy, seed=0, fastpath=False
        )
        # LlcSimResult equality covers accesses/hits/misses/evictions and
        # excludes wall-clock fields.
        assert fast == scalar

    def test_eligibility_gate_is_exactly_lru_by_name(self):
        assert fastpath_eligible("lru")
        for policy in sorted(POLICY_NAMES):
            if policy != "lru":
                assert not fastpath_eligible(policy)
        # Instances may carry pre-seeded state: never eligible.
        from repro.policies.registry import make_policy

        assert not fastpath_eligible(make_policy("lru"))

    def test_fastpath_replay_matches_scalar_directly(self, stream, geometry):
        fast = replay_lru_fastpath(stream, geometry)
        scalar = run_policy_on_stream(
            stream, geometry, "lru", seed=0, fastpath=False
        )
        assert fast == scalar


@needs_numpy
class TestNumpyVsPython:
    def test_compute_next_use(self, stream):
        vectorized = compute_next_use(stream.blocks, use_numpy=True)
        scalar = compute_next_use(stream.blocks, use_numpy=False)
        assert list(vectorized) == list(scalar)

    def test_replay_lru_fastpath(self, stream, geometry):
        vectorized = replay_lru_fastpath(stream, geometry, use_numpy=True)
        scalar = replay_lru_fastpath(stream, geometry, use_numpy=False)
        assert vectorized == scalar

    def test_reconstruct_lru_replay(self, stream, geometry):
        vectorized = reconstruct_lru_replay(stream, geometry, use_numpy=True)
        scalar = reconstruct_lru_replay(stream, geometry, use_numpy=False)
        assert vectorized.hits == scalar.hits
        assert vectorized.misses == scalar.misses
        assert vectorized.evictions == scalar.evictions
        for column in ("distances", "rids", "res_block", "res_fill",
                       "res_end", "res_way", "res_hits", "res_other_hits",
                       "res_core_mask", "res_write_mask", "evicted_rid",
                       "live_rids"):
            assert list(getattr(vectorized, column)) == \
                list(getattr(scalar, column)), column

    def test_build_stream_annotation(self, stream, geometry):
        vectorized = build_stream_annotation(stream, geometry, use_numpy=True)
        scalar = build_stream_annotation(stream, geometry, use_numpy=False)
        assert list(vectorized) == list(scalar)
