"""Differential matrix: every accelerated path against its reference.

Two axes, each promising *bit-identical* results:

* fast tiers vs scalar — the accelerated replays against the scalar
  ``LlcOnlySimulator`` model, checked for **every registered policy**
  plus OPT. Each policy declares a replay tier (``stack`` for plain LRU's
  stack-distance walk, ``set``/``dueling`` for the set-partitioned
  kernels, ``scalar`` for SHiP and wrapped policies); eligible tiers must
  match the scalar model exactly *and* record the tier that ran, while
  scalar-tier policies must be rejected by the dispatch (taking a fast
  tier for a policy it does not model would be the bug).
* numpy vs pure Python — every dual-implementation kernel
  (:func:`compute_next_use`, :func:`reconstruct_lru_replay`,
  :func:`replay_lru_fastpath`, :func:`build_stream_annotation`,
  :func:`partition_stream`, :func:`replay_setpath`) with the backend
  forced each way.

The set-dueling tier additionally pins its PSEL reconstruction: the
two-phase replay rebuilds the PSEL time-series from leader misses alone,
and a hypothesis-driven differential checks that series against the PSEL
value the scalar model holds after every single access.

Streams come from real workload models (not synthetic toys), so the
comparison covers sharing, writes, and multi-core interleavings;
hypothesis adds adversarial small streams on top.
"""

from bisect import bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.npsupport import HAVE_NUMPY
from repro.oracle.annotate import build_stream_annotation
from repro.policies.opt import compute_next_use
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.sim.experiment import ExperimentContext
from repro.sim.fastpath import (
    fastpath_eligible,
    reconstruct_lru_replay,
    replay_lru_fastpath,
)
from repro.sim.multipass import run_opt, run_policy_on_stream
from repro.sim.setpath import (
    partition_stream,
    reconstruct_psel_series,
    replay_setpath,
    replay_tier_table,
    setpath_tier_of,
)
from tests.conftest import make_stream

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable: only the pure-Python "
    "backend exists, nothing to differentiate"
)


@pytest.fixture(scope="module")
def stream(request):
    """One real recorded LLC stream (dedup: shared hash tables, writes)."""
    from repro.common.config import CacheGeometry, MachineConfig

    machine = MachineConfig(
        name="diff", num_cores=4,
        l1=CacheGeometry(512, 4), l2=CacheGeometry(1024, 4),
        llc=CacheGeometry(8192, 8), scale=1024,
    )
    context = ExperimentContext(
        machine, target_accesses=12_000, seed=9, workloads=["dedup"],
    )
    return context.artifacts("dedup").stream


@pytest.fixture(scope="module")
def geometry():
    from repro.common.config import CacheGeometry

    return CacheGeometry(8192, 8, 64)  # 16 sets x 8 ways


EXPECTED_TIERS = {
    "lru": "stack",
    "lip": "set",
    "bip": "set",
    "dip": "dueling",
    "srrip": "set",
    "brrip": "set",
    "drrip": "dueling",
    "nru": "set",
    "random": "set",
    "ship": "scalar",
}


class TestFastTiersVsScalar:
    @pytest.mark.parametrize("policy", sorted(POLICY_NAMES))
    def test_policy_fast_tier_matches_scalar(self, stream, geometry, policy):
        fast = run_policy_on_stream(
            stream, geometry, policy, seed=0, fastpath=True
        )
        scalar = run_policy_on_stream(
            stream, geometry, policy, seed=0, fastpath=False
        )
        # LlcSimResult equality covers accesses/hits/misses/evictions and
        # excludes wall-clock and tier fields.
        assert fast == scalar
        # The tier that actually ran is recorded on the result: declared
        # fast tiers must not silently fall back, and scalar-only
        # policies (SHiP: globally-coupled SHCT) must demonstrably have
        # replayed through the scalar model.
        assert fast.tier == EXPECTED_TIERS[policy]
        assert scalar.tier == "scalar"

    def test_opt_fast_tier_matches_scalar(self, stream, geometry):
        fast = run_opt(stream, geometry, fastpath=True)
        scalar = run_opt(stream, geometry, fastpath=False)
        assert fast == scalar
        assert fast.tier == "set"
        assert scalar.tier == "scalar"

    def test_replay_tier_table_is_total_and_pinned(self):
        table = replay_tier_table()
        assert table == dict(EXPECTED_TIERS, opt="set")
        assert set(POLICY_NAMES) <= set(table)

    def test_stack_gate_is_exactly_lru_by_name(self):
        assert fastpath_eligible("lru")
        for policy in sorted(POLICY_NAMES):
            if policy != "lru":
                assert not fastpath_eligible(policy)
        # Bound instances may carry pre-seeded state: every tier demotes
        # them to scalar.
        from repro.common.config import CacheGeometry

        bound = make_policy("srrip")
        bound.bind(CacheGeometry(4 * 2 * 64, 2))
        assert setpath_tier_of(bound) == "scalar"

    def test_fastpath_replay_matches_scalar_directly(self, stream, geometry):
        fast = replay_lru_fastpath(stream, geometry)
        scalar = run_policy_on_stream(
            stream, geometry, "lru", seed=0, fastpath=False
        )
        assert fast == scalar


def _scalar_psel_trace(stream, geometry, policy):
    """PSEL after every access, from the scalar reference model."""
    from repro.cache.llc import SharedLlc

    llc = SharedLlc(geometry, policy)
    access = llc.access
    trace = []
    for core, pc, block, write in zip(*stream.columns()):
        access(core, pc, block, write != 0)
        trace.append(policy.duel.psel)
    return trace


class TestPselReconstruction:
    """The dueling tier's PSEL series vs the scalar model, access by access."""

    @pytest.mark.parametrize("policy", ["dip", "drrip"])
    def test_series_matches_scalar_on_real_stream(
        self, stream, geometry, policy
    ):
        trace = _scalar_psel_trace(stream, geometry, make_policy(policy, seed=3))
        positions, values = reconstruct_psel_series(
            stream, geometry, make_policy(policy, seed=3)
        )
        assert len(values) == len(positions) + 1
        assert positions == sorted(positions)
        for p in range(0, len(trace), 97):  # stride keeps the check O(n/97)
            assert values[bisect_right(positions, p)] == trace[p], p
        assert values[-1] == trace[-1]

    @settings(max_examples=30, deadline=None)
    @given(
        policy=st.sampled_from(["dip", "drrip"]),
        seed=st.integers(0, 7),
        accesses=st.lists(
            st.tuples(
                st.integers(0, 3),           # core
                st.sampled_from([0x10, 0x20, 0x30]),  # pc
                st.integers(0, 63),          # block
                st.booleans(),               # write
            ),
            min_size=1, max_size=300,
        ),
    )
    def test_series_matches_scalar_on_random_streams(
        self, policy, seed, accesses
    ):
        from repro.common.config import CacheGeometry

        geometry = CacheGeometry(8 * 2 * 64, 2)  # 8 sets x 2 ways
        small = make_stream(accesses)
        trace = _scalar_psel_trace(small, geometry, make_policy(policy, seed=seed))
        positions, values = reconstruct_psel_series(
            small, geometry, make_policy(policy, seed=seed)
        )
        for p, expected in enumerate(trace):
            assert values[bisect_right(positions, p)] == expected, p


@needs_numpy
class TestNumpyVsPython:
    def test_compute_next_use(self, stream):
        vectorized = compute_next_use(stream.blocks, use_numpy=True)
        scalar = compute_next_use(stream.blocks, use_numpy=False)
        assert list(vectorized) == list(scalar)

    def test_replay_lru_fastpath(self, stream, geometry):
        vectorized = replay_lru_fastpath(stream, geometry, use_numpy=True)
        scalar = replay_lru_fastpath(stream, geometry, use_numpy=False)
        assert vectorized == scalar

    def test_reconstruct_lru_replay(self, stream, geometry):
        vectorized = reconstruct_lru_replay(stream, geometry, use_numpy=True)
        scalar = reconstruct_lru_replay(stream, geometry, use_numpy=False)
        assert vectorized.hits == scalar.hits
        assert vectorized.misses == scalar.misses
        assert vectorized.evictions == scalar.evictions
        for column in ("distances", "rids", "res_block", "res_fill",
                       "res_end", "res_way", "res_hits", "res_other_hits",
                       "res_core_mask", "res_write_mask", "evicted_rid",
                       "live_rids"):
            assert list(getattr(vectorized, column)) == \
                list(getattr(scalar, column)), column

    def test_partition_stream(self, stream, geometry):
        vectorized = partition_stream(
            stream.blocks, geometry.num_sets, use_numpy=True
        )
        scalar = partition_stream(
            stream.blocks, geometry.num_sets, use_numpy=False
        )
        assert vectorized.order == scalar.order
        assert vectorized.starts == scalar.starts
        assert vectorized.blocks == scalar.blocks

    @pytest.mark.parametrize("policy", ["srrip", "drrip", "nru", "random"])
    def test_replay_setpath(self, stream, geometry, policy):
        def run(use_numpy):
            return replay_setpath(
                stream, geometry, make_policy(policy, seed=1),
                use_numpy=use_numpy,
            )

        assert run(True) == run(False)

    def test_reconstruct_psel_series(self, stream, geometry):
        for policy in ("dip", "drrip"):
            vectorized = reconstruct_psel_series(
                stream, geometry, make_policy(policy, seed=2), use_numpy=True
            )
            scalar = reconstruct_psel_series(
                stream, geometry, make_policy(policy, seed=2), use_numpy=False
            )
            assert vectorized == scalar

    def test_build_stream_annotation(self, stream, geometry):
        vectorized = build_stream_annotation(stream, geometry, use_numpy=True)
        scalar = build_stream_annotation(stream, geometry, use_numpy=False)
        assert list(vectorized) == list(scalar)
